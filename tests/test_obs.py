"""Tests for the observability layer (:mod:`repro.obs`) and its wiring.

Covers the histogram primitive itself (bucket boundaries, exact merge
associativity, quantile error bounds against sorted-sample ground
truth, snapshot immutability), the metrics registry and its Prometheus
exposition, tracing (span nesting, ambient propagation, the slow-query
log with a full span timeline for an artificially slowed query), the
structured-log formatters, and the end-to-end paths: a client-sent
``trace_id`` landing in the durable WAL over live TCP, consistent
engine stats under concurrent query load, and error-path latency
accounting.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import random
import threading
import time
import urllib.request

import pytest

from repro.errors import LabelingError
from repro.loadgen import get_scenario, run_scenario
from repro.loadgen.driver import engine_driver_factory
from repro.obs import (
    NULL,
    Histogram,
    HistogramSnapshot,
    JsonLineFormatter,
    MetricsExporter,
    MetricsRegistry,
    TextLineFormatter,
    Trace,
    Tracer,
    activate,
    current_trace,
    current_trace_id,
    default_registry,
    log_event,
    merge_snapshots,
    new_trace_id,
    parse_prometheus_text,
)
from repro.obs.histogram import NUM_BUCKETS, bucket_bounds, bucket_index
from repro.service import QueryEngine, ServiceClient, SessionManager
from repro.service.protocol import Request
from repro.service.server import ReproServer, ReproService
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation


def make_execution(spec, size=200, seed=0):
    run = sample_run(spec, size, random.Random(seed))
    return run, execution_from_derivation(run)


@pytest.fixture(scope="module")
def run_and_execution(running_spec):
    return make_execution(running_spec)


# ---------------------------------------------------------------------------
# histogram: buckets, merging, quantiles, immutability
# ---------------------------------------------------------------------------


class TestHistogramBuckets:
    def test_bucket_boundaries(self):
        # bucket 0 is [0, 2); bucket i is [2^i, 2^(i+1))
        assert bucket_index(0) == 0
        assert bucket_index(1) == 0
        assert bucket_index(2) == 1
        assert bucket_index(3) == 1
        assert bucket_index(4) == 2
        for i in range(1, 20):
            lo, hi = bucket_bounds(i)
            assert lo == 1 << i and hi == 1 << (i + 1)
            # boundary values land in the right bucket on both sides
            assert bucket_index(lo) == i
            assert bucket_index(hi - 1) == i
            assert bucket_index(hi) == i + 1

    def test_top_bucket_clips_not_overflows(self):
        assert bucket_index(1 << 200) == NUM_BUCKETS - 1

    def test_record_negative_clamped_to_zero(self):
        hist = Histogram()
        hist.record(-1.0)
        snap = hist.snapshot()
        assert snap.count == 1
        assert snap.min_ns == snap.max_ns == 0

    def test_record_seconds_is_nanosecond_buckets(self):
        hist = Histogram()
        hist.record(1e-6)  # 1000 ns -> bucket 9 ([512, 1024))
        snap = hist.snapshot()
        assert snap.counts[bucket_index(1000)] == 1
        assert snap.sum_ns == 1000

    def test_len_counts_records(self):
        hist = Histogram()
        assert len(hist) == 0
        for _ in range(5):
            hist.record_ns(7)
        assert len(hist) == 5


class TestHistogramMerge:
    def test_merge_is_exactly_associative(self):
        rng = random.Random(42)
        snaps = []
        for _ in range(9):
            hist = Histogram()
            for _ in range(rng.randrange(1, 200)):
                hist.record_ns(rng.randrange(0, 10**9))
            snaps.append(hist.snapshot())
        # any grouping yields the identical aggregate, field for field
        left = merge_snapshots(snaps)
        right = snaps[0]
        for snap in snaps[1:]:
            right = right.merge(snap)
        paired = merge_snapshots(
            [merge_snapshots(snaps[:4]), merge_snapshots(snaps[4:])]
        )
        assert left == right == paired

    def test_merge_empty_identity(self):
        hist = Histogram()
        hist.record_ns(123)
        snap = hist.snapshot()
        empty = HistogramSnapshot.empty()
        assert empty.merge(snap) == snap
        assert snap.merge(empty) == snap
        assert merge_snapshots([None, snap, None]) == snap

    def test_merge_matches_single_population(self):
        rng = random.Random(7)
        samples = [rng.randrange(0, 10**7) for _ in range(500)]
        whole = Histogram()
        parts = [Histogram() for _ in range(4)]
        for index, ns in enumerate(samples):
            whole.record_ns(ns)
            parts[index % 4].record_ns(ns)
        merged = merge_snapshots(part.snapshot() for part in parts)
        assert merged == whole.snapshot()


class TestHistogramQuantiles:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_quantile_within_factor_two_of_sorted_sample(self, seed):
        rng = random.Random(seed)
        # a lognormal-ish latency population spanning several decades
        samples = sorted(
            int(10 ** rng.uniform(2, 8)) for _ in range(2000)
        )
        hist = Histogram()
        for ns in samples:
            hist.record_ns(ns)
        snap = hist.snapshot()
        for q in (0.1, 0.25, 0.5, 0.9, 0.95, 0.99):
            rank = min(len(samples) - 1, max(0, -(-int(q * len(samples))) - 1))
            truth = samples[rank]
            estimate = snap.quantile(q) * 1e9
            assert truth / 2 <= estimate <= truth * 2, (
                f"q={q}: estimate {estimate} vs truth {truth}"
            )

    def test_extremes_are_exact(self):
        hist = Histogram()
        for ns in (10, 500, 9000):
            hist.record_ns(ns)
        snap = hist.snapshot()
        assert snap.quantile(0.0) == pytest.approx(10 / 1e9)
        assert snap.quantile(1.0) == pytest.approx(9000 / 1e9)
        assert snap.min_seconds == pytest.approx(10 / 1e9)
        assert snap.max_seconds == pytest.approx(9000 / 1e9)

    def test_percentiles_monotonic(self):
        rng = random.Random(3)
        hist = Histogram()
        for _ in range(1000):
            hist.record(rng.expovariate(1000.0))
        snap = hist.snapshot()
        doc = snap.to_dict()
        assert doc["min"] <= doc["p50"] <= doc["p95"] <= doc["p99"]
        assert doc["p99"] <= doc["max"]
        assert doc["count"] == 1000

    def test_empty_snapshot_statistics(self):
        snap = HistogramSnapshot.empty()
        assert snap.quantile(0.5) == 0.0
        assert snap.mean_seconds == 0.0
        assert snap.to_dict()["count"] == 0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            HistogramSnapshot.empty().quantile(1.5)

    def test_snapshot_is_immutable(self):
        hist = Histogram()
        hist.record_ns(5)
        snap = hist.snapshot()
        with pytest.raises(dataclasses.FrozenInstanceError):
            snap.count = 99
        # and detached from the live histogram
        before = snap.count
        hist.record_ns(6)
        assert snap.count == before


# ---------------------------------------------------------------------------
# registry and exposition
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_instruments_are_cached_per_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", op="query")
        b = registry.counter("x_total", op="query")
        c = registry.counter("x_total", op="ingest")
        assert a is b and a is not c
        assert registry.histogram("y_seconds") is registry.histogram(
            "y_seconds"
        )

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("req_total", op="query").inc(3)
        registry.histogram("lat_seconds", op="query").record(0.01)
        snap = registry.snapshot()
        assert snap["counters"] == [
            {"name": "req_total", "labels": {"op": "query"}, "value": 3}
        ]
        (hist,) = snap["histograms"]
        assert hist["name"] == "lat_seconds"
        assert hist["labels"] == {"op": "query"}
        assert hist["count"] == 1

    def test_null_registry_is_inert(self):
        NULL.counter("anything").inc(5)
        NULL.histogram("anything").record(1.0)
        assert NULL.snapshot() == {"counters": [], "histograms": []}
        assert not NULL.enabled
        parse_prometheus_text(NULL.render_prometheus())

    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", op="query",
                         status="ok").inc(7)
        hist = registry.histogram("repro_op_latency_seconds", op="query")
        for ns in (100, 1000, 50_000, 2_000_000):
            hist.record_ns(ns)
        series = parse_prometheus_text(registry.render_prometheus())
        (counter,) = series["repro_requests_total"]
        assert counter["value"] == 7
        assert counter["labels"] == {"op": "query", "status": "ok"}
        buckets = series["repro_op_latency_seconds_bucket"]
        # cumulative and monotone, +Inf equals the count
        values = [sample["value"] for sample in buckets]
        assert values == sorted(values)
        assert buckets[-1]["labels"]["le"] == "+Inf"
        assert buckets[-1]["value"] == 4
        (count,) = series["repro_op_latency_seconds_count"]
        assert count["value"] == 4
        (total,) = series["repro_op_latency_seconds_sum"]
        assert total["value"] == pytest.approx(2_051_100 / 1e9)

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", label='quo"te\nnl').inc()
        series = parse_prometheus_text(registry.render_prometheus())
        assert "odd_total" in series

    def test_parser_rejects_malformed_lines(self):
        for bad in ("no_value", "name{unclosed 3", "name{x=y} 1",
                    "name 12 34 not-a-float"):
            with pytest.raises(ValueError):
                parse_prometheus_text(bad)

    def test_exporter_serves_scrapes(self):
        registry = MetricsRegistry()
        registry.counter("up_total").inc()
        exporter = MetricsExporter(registry.render_prometheus).start()
        try:
            url = f"http://127.0.0.1:{exporter.port}/metrics"
            with urllib.request.urlopen(url, timeout=10) as response:
                assert response.status == 200
                text = response.read().decode("utf-8")
            series = parse_prometheus_text(text)
            assert series["up_total"][0]["value"] == 1
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{exporter.port}/other", timeout=10
                )
        finally:
            exporter.stop()


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


class TestTracing:
    def test_trace_ids_unique_and_hex(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(t) == 16 and int(t, 16) >= 0 for t in ids)

    def test_span_nesting_depths(self):
        trace = Trace("query")
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        trace.finish()
        spans = {span.name: span for span in trace.spans}
        assert spans["inner"].depth == 2
        assert spans["outer"].depth == 1
        # inner closed first, and fits inside outer's window
        assert trace.spans[0].name == "inner"
        outer, inner = spans["outer"], spans["inner"]
        assert inner.start_ns >= outer.start_ns
        assert (inner.start_ns + inner.duration_ns
                <= outer.start_ns + outer.duration_ns)

    def test_activation_nests_and_restores(self):
        assert current_trace() is None
        outer, inner = Trace("a", trace_id="out"), Trace("b", trace_id="in")
        with activate(outer):
            assert current_trace_id() == "out"
            with activate(inner):
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None and current_trace_id() is None

    def test_tracer_rings_are_bounded(self):
        tracer = Tracer(capacity=4, slow_capacity=2, slow_threshold=0.0)
        for index in range(10):
            tracer.finish(tracer.start("query", trace_id=f"t{index}"))
        summary = tracer.summary()
        assert summary["finished"] == 10
        assert summary["retained"] == 4
        assert summary["slow"] == 10  # threshold 0: everything is slow
        assert summary["slow_retained"] == 2
        assert [t["trace_id"] for t in tracer.recent()] == [
            "t6", "t7", "t8", "t9"
        ]
        assert [t["trace_id"] for t in tracer.slow()] == ["t8", "t9"]

    def test_fast_traces_skip_the_slow_log(self):
        records = []
        logger = _capture_logger("test-obs-fast", records)
        tracer = Tracer(slow_threshold=30.0, logger=logger)
        tracer.finish(tracer.start("query"))
        assert records == []
        assert tracer.summary()["slow"] == 0

    def test_slow_trace_emits_timeline(self):
        records = []
        logger = _capture_logger("test-obs-slow", records)
        tracer = Tracer(slow_threshold=0.0, logger=logger)
        trace = tracer.start("query", trace_id="slow-1")
        with trace.span("cache_probe"):
            pass
        tracer.finish(trace, status="ok")
        (record,) = records
        assert record.levelno == logging.WARNING
        assert record.getMessage() == "slow-query"
        fields = record.fields
        assert fields["trace_id"] == "slow-1"
        assert fields["op"] == "query"
        assert [span["name"] for span in fields["spans"]] == ["cache_probe"]
        assert fields["threshold_s"] == 0.0


class TestSlowQueryLogEndToEnd:
    def test_artificially_slow_query_logs_full_timeline(
        self, running_spec, run_and_execution, monkeypatch
    ):
        """An artificially slowed request crosses the tracer threshold
        and lands in the slow-query log with its full span timeline."""
        records = []
        logger = _capture_logger("test-obs-slow-e2e", records)
        service = ReproService(
            shards=1, tracer=Tracer(slow_threshold=0.01, logger=logger)
        )
        run, execution = run_and_execution
        service.handle(Request(op="create_session", params={
            "name": "slow", "spec": "running-example",
        }))
        from repro.service.protocol import insertions_to_wire

        service.handle(Request(op="ingest", params={
            "session": "slow",
            "insertions": insertions_to_wire(execution.insertions),
        }))
        real_query_many = service.engine.query_many

        def slowed(*args, **kwargs):
            time.sleep(0.05)
            return real_query_many(*args, **kwargs)

        monkeypatch.setattr(service.engine, "query_many", slowed)
        vid = sorted(run.graph.vertices())[0]
        response = service.handle(Request(
            op="query",
            params={"session": "slow", "source": vid, "target": vid},
            trace_id="slowed-query",
        ))
        assert response.ok and response.trace_id == "slowed-query"
        slow_logged = [
            r for r in records
            if r.getMessage() == "slow-query"
            and r.fields["trace_id"] == "slowed-query"
        ]
        (record,) = slow_logged
        fields = record.fields
        assert fields["op"] == "query"
        assert fields["session"] == "slow"
        assert fields["duration_us"] >= 50_000
        names = [span["name"] for span in fields["spans"]]
        assert "cache_probe" in names and "miss_fill" in names
        # the tracer's slow ring retains the same trace
        assert any(
            t["trace_id"] == "slowed-query" for t in service.tracer.slow()
        )


def _capture_logger(name: str, records: list) -> logging.Logger:
    """A quiet logger appending every record to ``records``."""

    class _Capture(logging.Handler):
        def emit(self, record: logging.LogRecord) -> None:
            records.append(record)

    logger = logging.getLogger(name)
    logger.handlers = [_Capture()]
    logger.propagate = False
    logger.setLevel(logging.DEBUG)
    return logger


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------


class TestStructuredLogs:
    def test_json_formatter_emits_parsable_lines(self):
        records = []
        logger = _capture_logger("test-obs-json", records)
        log_event(logger, logging.INFO, "connection-open",
                  peer="127.0.0.1:1", requests=3)
        doc = json.loads(JsonLineFormatter().format(records[0]))
        assert doc["event"] == "connection-open"
        assert doc["level"] == "info"
        assert doc["peer"] == "127.0.0.1:1"
        assert doc["requests"] == 3
        assert doc["logger"] == "test-obs-json"
        assert "trace_id" not in doc  # no trace active

    def test_json_formatter_attaches_active_trace(self):
        records = []
        logger = _capture_logger("test-obs-json-trace", records)
        with activate(Trace("query", trace_id="tid-log")):
            log_event(logger, logging.WARNING, "request-error", code=7)
            doc = json.loads(JsonLineFormatter().format(records[0]))
        assert doc["trace_id"] == "tid-log"
        assert doc["code"] == 7

    def test_text_formatter_renders_fields(self):
        records = []
        logger = _capture_logger("test-obs-text", records)
        log_event(logger, logging.INFO, "checkpoint-roll",
                  session="s", seconds=0.25)
        line = TextLineFormatter().format(records[0])
        assert "checkpoint-roll" in line
        assert "session=s" in line and "seconds=0.25" in line

    def test_log_event_respects_level(self):
        records = []
        logger = _capture_logger("test-obs-level", records)
        logger.setLevel(logging.WARNING)
        log_event(logger, logging.DEBUG, "ignored")
        log_event(logger, logging.ERROR, "kept")
        assert [r.getMessage() for r in records] == ["kept"]


# ---------------------------------------------------------------------------
# engine accounting: error paths and consistent stats
# ---------------------------------------------------------------------------


class TestEngineAccounting:
    def test_error_path_accounted_separately(
        self, running_spec, run_and_execution
    ):
        run, execution = run_and_execution
        manager = SessionManager()
        registry = MetricsRegistry()
        engine = QueryEngine(manager, metrics=registry)
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions)
        vids = sorted(run.graph.vertices())
        engine.query_many("a", [(vids[0], vids[1])])
        before = engine.stats()
        with pytest.raises(LabelingError):
            engine.query_many("a", [(vids[0], 10**9)])
        after = engine.stats()
        # the poisoned batch never touches the normal counters...
        assert after.queries == before.queries
        assert after.cache_hits == before.cache_hits
        assert after.cache_misses == before.cache_misses
        assert after.query_seconds == before.query_seconds
        # ...but its elapsed time is accounted under the error counters
        assert after.query_errors == before.query_errors + 1
        assert after.query_error_seconds > before.query_error_seconds
        assert registry.counter("repro_engine_errors_total").value == 1
        errored = registry.histogram("repro_engine_errored_seconds")
        assert errored.snapshot().count == 1
        assert "query_errors" in after.to_dict()

    def test_errored_ingest_accounted(self, running_spec):
        manager = SessionManager()
        registry = MetricsRegistry()
        engine = QueryEngine(manager, metrics=registry)
        manager.create("a", running_spec)
        with pytest.raises(Exception):
            engine.ingest("a", [object()])  # not an insertion record
        assert registry.counter("repro_engine_errors_total").value == 1

    def test_stage_histograms_populate(
        self, running_spec, run_and_execution
    ):
        run, execution = run_and_execution
        manager = SessionManager()
        registry = MetricsRegistry()
        engine = QueryEngine(manager, metrics=registry)
        manager.create("a", running_spec)
        # the session layer's label_build histogram binds to the
        # process default registry (sessions are engine-independent)
        label_build = default_registry().histogram(
            "repro_engine_stage_seconds", stage="label_build"
        )
        built_before = label_build.snapshot().count
        engine.ingest("a", execution.insertions)
        assert label_build.snapshot().count > built_before
        vids = sorted(run.graph.vertices())
        pairs = [(vids[0], vids[1]), (vids[1], vids[2])]
        engine.query_many("a", pairs)  # cold: probe + fill
        engine.query_many("a", pairs)  # warm: probe only
        probe = registry.histogram(
            "repro_engine_stage_seconds", stage="cache_probe"
        ).snapshot()
        fill = registry.histogram(
            "repro_engine_stage_seconds", stage="miss_fill"
        ).snapshot()
        assert probe.count == 2
        assert fill.count == 1

    def test_null_registry_disables_stage_recording(
        self, running_spec, run_and_execution
    ):
        run, execution = run_and_execution
        manager = SessionManager()
        engine = QueryEngine(manager, metrics=NULL)
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions)
        vids = sorted(run.graph.vertices())
        answers = engine.query_many("a", [(vids[0], vids[1])])
        assert len(answers) == 1  # still correct, just uninstrumented
        assert not engine._observe

    def test_stats_consistent_under_concurrent_queries(
        self, running_spec, run_and_execution
    ):
        """Regression for torn stats: hits + misses == queries must hold
        in *every* snapshot taken while query batches are in flight."""
        run, execution = run_and_execution
        manager = SessionManager(shards=4)
        engine = QueryEngine(
            manager, cache_size=256, shards=4, metrics=MetricsRegistry()
        )
        vids = sorted(run.graph.vertices())
        for name in ("s0", "s1", "s2"):
            manager.create(name, running_spec)
            engine.ingest(name, execution.insertions)
        stop = threading.Event()
        failures: list = []

        def hammer(worker: int) -> None:
            rng = random.Random(worker)
            names = ("s0", "s1", "s2")
            try:
                while not stop.is_set():
                    pairs = [
                        (rng.choice(vids), rng.choice(vids))
                        for _ in range(rng.randrange(1, 32))
                    ]
                    engine.query_many(rng.choice(names), pairs)
            except Exception as exc:  # pragma: no cover - diagnostics
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,), daemon=True)
            for w in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            deadline = time.monotonic() + 0.5
            snapshots = 0
            while time.monotonic() < deadline:
                stats = engine.stats()
                assert (
                    stats.cache_hits + stats.cache_misses == stats.queries
                ), "torn stats snapshot"
                snapshots += 1
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not failures
        assert snapshots > 10
        final = engine.stats()
        assert final.queries > 0
        assert final.cache_hits + final.cache_misses == final.queries


# ---------------------------------------------------------------------------
# end-to-end: trace ids over live TCP, the metrics op, WAL stamping
# ---------------------------------------------------------------------------


class TestTracePropagationOverTCP:
    def test_client_trace_id_reaches_the_wal(self, tmp_path, running_spec):
        run, execution = make_execution(running_spec, size=80, seed=2)
        service = ReproService(shards=2, data_dir=str(tmp_path))
        server = ReproServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with ServiceClient("127.0.0.1", server.port) as client:
                client.create_session("walsess", "running-example")
                events = execution.insertions
                client.ingest("walsess", events[:10], trace_id="tid-wal-1")
                client.ingest("walsess", events[10:20])
                # chunked+pipelined queries carry the id too (the echo
                # proves the server accepted it on every chunk)
                vids = sorted(ins.vid for ins in events[:10])
                pairs = [(vids[0], v) for v in vids]
                client.query_batch(
                    "walsess", pairs, chunk=3, trace_id="tid-batch"
                )
            wal_path = service.store.session_dir("walsess") / "wal.jsonl"
            stamped = []
            untagged = 0
            for line in wal_path.read_text().splitlines():
                record = json.loads(line)
                if record.get("trace_id"):
                    stamped.append(record["trace_id"])
                elif record.get("insertions"):
                    untagged += 1
            # the traced ingest's record carries the client's id; the
            # untraced ingest still gets the server-minted one
            assert "tid-wal-1" in stamped
            assert untagged == 0
            assert len(stamped) == 2
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_response_echoes_or_mints_trace_id(self, server_fixture):
        server = server_fixture
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.call("ping", trace_id="echo-me")["pong"]
            # the service's trace ring retains the client's id
            recent = server.service.tracer.recent()
            assert any(t["trace_id"] == "echo-me" for t in recent)
            client.ping()  # no id: the server mints one
            minted = server.service.tracer.recent()[-1]["trace_id"]
            assert len(minted) == 16 and int(minted, 16) >= 0

    def test_metrics_op_over_tcp(self, server_fixture, running_spec):
        server = server_fixture
        run, execution = make_execution(running_spec, size=60, seed=5)
        with ServiceClient("127.0.0.1", server.port) as client:
            client.create_session("m", "running-example")
            client.ingest("m", execution.insertions)
            vids = sorted(run.graph.vertices())
            client.query_batch("m", [(vids[0], vids[1])])
            metrics = client.metrics()
        by_name: dict = {}
        for hist in metrics["histograms"]:
            by_name.setdefault(hist["name"], []).append(hist)
        latency_ops = {
            h["labels"].get("op")
            for h in by_name["repro_op_latency_seconds"]
            if h["count"]
        }
        assert {"create_session", "ingest", "query_batch"} <= latency_ops
        stages = {
            h["labels"].get("stage")
            for h in by_name["repro_engine_stage_seconds"]
        }
        assert {"cache_probe", "miss_fill"} <= stages
        for hist in by_name["repro_op_latency_seconds"]:
            assert hist["p50"] <= hist["p95"] <= hist["p99"]
        # create_session + ingest + query_batch have finished; the
        # metrics request itself is still in flight when it answers
        assert metrics["traces"]["finished"] >= 3
        statuses = {
            (c["labels"].get("op"), c["labels"].get("status"))
            for c in metrics["counters"]
            if c["name"] == "repro_requests_total" and c["value"]
        }
        assert ("query_batch", "ok") in statuses

    def test_request_errors_counted_by_status(self, server_fixture):
        server = server_fixture
        with ServiceClient("127.0.0.1", server.port) as client:
            with pytest.raises(Exception):
                client.query("ghost", 1, 2)
            metrics = client.metrics()
        errored = [
            c for c in metrics["counters"]
            if c["name"] == "repro_requests_total"
            and c["labels"] == {"op": "query", "status": "error"}
        ]
        assert errored and errored[0]["value"] >= 1


@pytest.fixture()
def server_fixture():
    """A server over a private registry, so assertions see only its own
    traffic (the process-default registry is shared suite-wide)."""
    service = ReproService(shards=2, metrics=MetricsRegistry())
    server = ReproServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


# ---------------------------------------------------------------------------
# loadgen report latency summaries
# ---------------------------------------------------------------------------


class TestLoadgenLatency:
    def test_report_latency_percentiles_monotonic(self):
        scenario = get_scenario("mixed")
        engine = QueryEngine(SessionManager(shards=2), shards=2)
        report = run_scenario(
            scenario,
            engine_driver_factory(engine),
            duration=0.4,
            workers=2,
            seed=1,
        )
        assert report.ok, report.errors
        for summary in (report.query_latency, report.ingest_latency):
            assert summary["count"] > 0
            assert summary["min"] <= summary["p50"] <= summary["p95"]
            assert summary["p95"] <= summary["p99"] <= summary["max"]
        doc = report.to_dict()
        assert doc["query_latency"] == report.query_latency
        assert doc["ingest_latency"] == report.ingest_latency
