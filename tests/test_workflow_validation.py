"""Tests for specification validation and the naming conditions."""

from __future__ import annotations

import pytest

from repro.datasets import bioaid, running_example, synthetic_spec, theorem1_grammar
from repro.errors import SpecificationError
from repro.graphs.two_terminal import TwoTerminalGraph
from repro.workflow.specification import make_spec
from repro.workflow.validation import (
    check_naming_conditions,
    naming_condition_violations,
    validate_specification,
)


def chain(names):
    return TwoTerminalGraph.build(
        list(enumerate(names)), [(i, i + 1) for i in range(len(names) - 1)]
    )


class TestStructuralValidation:
    def test_running_example_valid(self, running_spec):
        validate_specification(running_spec)

    def test_bioaid_valid(self):
        validate_specification(bioaid())
        validate_specification(bioaid(recursive=False))

    def test_synthetic_valid(self):
        validate_specification(synthetic_spec(12, 6, linear=True))
        validate_specification(synthetic_spec(12, 5, linear=False))

    def test_invalid_graph_rejected(self):
        dag = TwoTerminalGraph.build(
            [(0, "s"), (1, "X"), (2, "t"), (3, "dead")],
            [(0, 1), (1, 2), (0, 3)],
            source=0,
            sink=2,
        )
        with pytest.raises(SpecificationError):
            make_spec(dag, [("X", chain(["sx", "tx"]))])


class TestNamingConditions:
    def test_running_example_satisfies_conditions(self, running_spec):
        assert naming_condition_violations(running_spec) == []
        check_naming_conditions(running_spec)

    def test_bioaid_satisfies_conditions(self):
        check_naming_conditions(bioaid())
        check_naming_conditions(bioaid(recursive=False))

    def test_linear_synthetic_satisfies_conditions(self):
        check_naming_conditions(synthetic_spec(10, 5, linear=True))

    def test_theorem1_violates_condition1(self):
        # h1 repeats the name "A": condition 1 fails
        problems = naming_condition_violations(theorem1_grammar())
        assert any("duplicate" in p for p in problems)
        with pytest.raises(SpecificationError):
            check_naming_conditions(theorem1_grammar())

    def test_duplicate_terminal_name_across_graphs_detected(self):
        g0 = chain(["s", "X", "t"])
        hx = chain(["s", "tx"])  # reuses g0's source name
        spec = make_spec(g0, [("X", hx)], name="dupterm")
        problems = naming_condition_violations(spec)
        assert any("occurs" in p for p in problems)

    def test_nonlinear_synthetic_violates_conditions(self):
        # the nonlinear body repeats the REC name
        spec = synthetic_spec(10, 5, linear=False)
        problems = naming_condition_violations(spec)
        assert problems  # duplicate "REC" inside hrec
