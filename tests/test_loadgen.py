"""Tests for the load generator (repro.loadgen)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.loadgen import (
    Scenario,
    client_driver_factory,
    engine_driver_factory,
    get_scenario,
    run_scenario,
    scenarios,
)
from repro.schemes import registry as scheme_registry
from repro.service import QueryEngine, ReproServer, SessionManager
from repro.service.server import ReproService

# short but long enough that every worker completes setup + a few ops
SMOKE_SECONDS = 0.4


def smoke_scenario(**overrides):
    """A fast mixed scenario for the in-process smoke runs."""
    defaults = dict(
        name="smoke",
        summary="test scenario",
        sessions=2,
        run_size=80,
        prefill=24,
        query_fraction=0.6,
        batch_pairs=16,
        ingest_chunk=16,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestScenarios:
    def test_catalog_covers_the_issue_regimes(self):
        catalog = scenarios()
        for required in (
            "mixed",
            "ingest-heavy",
            "query-heavy",
            "hot-key",
            "many-small-sessions",
        ):
            assert required in catalog
            assert catalog[required].summary

    def test_catalog_sweeps_every_dynamic_scheme(self):
        catalog = scenarios()
        for scheme in scheme_registry.available(dynamic=True):
            scenario = catalog[f"scheme-{scheme}"]
            assert scenario.scheme == scheme

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ServiceError):
            get_scenario("no-such-scenario")
        assert get_scenario("hot-key").hot_fraction > 0


class TestInProcess:
    def test_mixed_run_verified_against_bfs(self):
        manager = SessionManager(shards=4)
        engine = QueryEngine(manager, cache_size=4096, shards=4)
        report = run_scenario(
            smoke_scenario(),
            engine_driver_factory(engine),
            duration=SMOKE_SECONDS,
            verify=True,
        )
        assert report.ok, report.errors
        assert report.operations > 0
        assert report.queries > 0 and report.ingested > 0
        assert report.transport == "in-process"
        assert report.stats["shards"] == 4
        assert report.stats["queries"] == report.queries
        # every worker closed its session on the way out
        assert len(manager) == 0

    def test_run_churns_sessions_when_runs_complete(self):
        manager = SessionManager()
        engine = QueryEngine(manager)
        report = run_scenario(
            smoke_scenario(
                run_size=40, prefill=16, query_fraction=0.1,
                ingest_chunk=16,
            ),
            engine_driver_factory(engine),
            duration=SMOKE_SECONDS,
            workers=2,
        )
        assert report.ok, report.errors
        assert report.sessions_created > 2  # churned past the first pair
        assert report.sessions_closed == report.sessions_created

    def test_hot_key_skew_warms_the_cache(self):
        manager = SessionManager()
        engine = QueryEngine(manager, cache_size=1 << 14)
        report = run_scenario(
            smoke_scenario(
                query_fraction=1.0, hot_fraction=1.0, hot_keys=0.1,
                prefill=80,
            ),
            engine_driver_factory(engine),
            duration=SMOKE_SECONDS,
        )
        assert report.ok, report.errors
        assert report.stats["hit_rate"] > 0.5

    def test_errors_are_captured_not_raised(self):
        """A runtime failure (a static scheme cannot host a live
        session) lands in the report, not as an exception."""
        manager = SessionManager()
        engine = QueryEngine(manager)
        report = run_scenario(
            smoke_scenario(scheme="skl"),
            engine_driver_factory(engine),
            duration=SMOKE_SECONDS,
            workers=1,
        )
        assert not report.ok
        assert any("static" in error for error in report.errors)

    def test_unknown_spec_raises_at_synthesis(self):
        """A misconfigured scenario fails fast, before any threads."""
        factory = engine_driver_factory(QueryEngine(SessionManager()))
        with pytest.raises(ServiceError):
            run_scenario(
                smoke_scenario(spec="no-such-spec"), factory,
                duration=SMOKE_SECONDS,
            )

    def test_bad_arguments_rejected(self):
        factory = engine_driver_factory(QueryEngine(SessionManager()))
        with pytest.raises(ValueError):
            run_scenario(smoke_scenario(), factory, duration=0)
        with pytest.raises(ValueError):
            run_scenario(smoke_scenario(), factory, duration=1, workers=0)


class TestOverTcp:
    def test_tcp_run_against_live_server(self):
        server = ReproServer(
            ("127.0.0.1", 0), ReproService(shards=4)
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            report = run_scenario(
                smoke_scenario(),
                client_driver_factory("127.0.0.1", server.port, chunk=8),
                duration=SMOKE_SECONDS,
                verify=True,
            )
            assert report.ok, report.errors
            assert report.transport == "tcp"
            assert report.queries > 0 and report.ingested > 0
            assert report.stats["queries"] >= report.queries
            # workers closed their sessions server-side too
            assert report.stats["sessions"] == 0
        finally:
            server.shutdown()
            server.server_close()


class TestCli:
    def test_loadgen_list(self, capsys):
        from repro.cli import main

        assert main(["loadgen", "--list"]) == 0
        out = capsys.readouterr().out
        assert "query-heavy" in out and "scheme-drl" in out

    def test_loadgen_smoke_run_json(self, capsys):
        import json

        from repro.cli import main

        status = main(
            [
                "loadgen", "many-small-sessions",
                "--duration", "0.3", "--workers", "2",
                "--shards", "2", "--verify", "--json",
            ]
        )
        assert status == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["operations"] > 0

    def test_loadgen_unknown_scenario_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["loadgen", "no-such-scenario", "--duration", "0.2"])
