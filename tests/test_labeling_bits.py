"""Tests for bit accounting helpers."""

from __future__ import annotations

import pytest

from repro.labeling.bits import pointer_bits, uint_bits


class TestUintBits:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (1023, 10), (1024, 11)],
    )
    def test_values(self, value, expected):
        assert uint_bits(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            uint_bits(-1)


class TestPointerBits:
    @pytest.mark.parametrize(
        "domain,expected",
        [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (16, 4), (17, 5), (1024, 10)],
    )
    def test_values(self, domain, expected):
        assert pointer_bits(domain) == expected

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            pointer_bits(0)
