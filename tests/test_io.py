"""Tests for XML/JSON interchange and the binary label store."""

from __future__ import annotations

import random
import xml.etree.ElementTree as ET

import pytest

from repro.datasets import bioaid, running_example, synthetic_spec
from repro.io import (
    execution_from_json,
    execution_from_xml,
    execution_to_json,
    execution_to_xml,
    load_execution_json,
    load_execution_xml,
    load_labels,
    load_specification_json,
    load_specification_xml,
    save_execution_json,
    save_execution_xml,
    save_labels,
    save_specification_json,
    save_specification_xml,
    specification_from_json,
    specification_from_xml,
    specification_to_json,
    specification_to_xml,
)
from repro.io.xmlio import FormatError
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.workflow.execution import execution_from_derivation

from tests.conftest import small_run


def specs_equal(a, b) -> bool:
    if a.name != b.name or a.loops != b.loops or a.forks != b.forks:
        return False
    keys_a, keys_b = list(a.graph_keys()), list(b.graph_keys())
    if keys_a != keys_b:
        return False
    for key in keys_a:
        ga, gb = a.graph(key), b.graph(key)
        if (ga.source, ga.sink) != (gb.source, gb.sink):
            return False
        if sorted(ga.edges()) != sorted(gb.edges()):
            return False
        if {v: ga.name(v) for v in ga.vertices()} != {
            v: gb.name(v) for v in gb.vertices()
        }:
            return False
    return True


SPEC_FACTORIES = [running_example, bioaid, lambda: synthetic_spec(8, 5)]


class TestSpecificationRoundTrip:
    @pytest.mark.parametrize("factory", SPEC_FACTORIES)
    def test_xml_round_trip(self, factory):
        spec = factory()
        reloaded = specification_from_xml(specification_to_xml(spec))
        assert specs_equal(spec, reloaded)

    @pytest.mark.parametrize("factory", SPEC_FACTORIES)
    def test_json_round_trip(self, factory):
        spec = factory()
        reloaded = specification_from_json(specification_to_json(spec))
        assert specs_equal(spec, reloaded)

    def test_xml_file_round_trip(self, tmp_path, running_spec):
        path = tmp_path / "spec.xml"
        save_specification_xml(running_spec, path)
        assert specs_equal(running_spec, load_specification_xml(path))

    def test_json_file_round_trip(self, tmp_path, running_spec):
        path = tmp_path / "spec.json"
        save_specification_json(running_spec, path)
        assert specs_equal(running_spec, load_specification_json(path))

    def test_bad_root_tag_rejected(self):
        with pytest.raises(FormatError):
            specification_from_xml(ET.Element("bogus"))

    def test_bad_json_format_rejected(self):
        with pytest.raises(FormatError):
            specification_from_json({"format": "other"})

    def test_missing_start_graph_rejected(self, running_spec):
        root = specification_to_xml(running_spec)
        for graph in root.findall("graph"):
            if graph.get("head") is None:
                root.remove(graph)
        with pytest.raises(FormatError):
            specification_from_xml(root)


class TestExecutionRoundTrip:
    def make_execution(self, spec, seed=1):
        run = small_run(spec, 120, seed=seed)
        return list(execution_from_derivation(run, random.Random(seed)))

    def test_xml_round_trip(self, running_spec):
        insertions = self.make_execution(running_spec)
        reloaded = execution_from_xml(execution_to_xml(insertions, "run"))
        assert reloaded == insertions

    def test_json_round_trip(self, running_spec):
        insertions = self.make_execution(running_spec)
        reloaded = execution_from_json(execution_to_json(insertions, "run"))
        assert reloaded == insertions

    def test_xml_file_round_trip(self, tmp_path, running_spec):
        insertions = self.make_execution(running_spec, seed=2)
        path = tmp_path / "exec.xml"
        save_execution_xml(insertions, path, "run")
        assert load_execution_xml(path) == insertions

    def test_json_file_round_trip(self, tmp_path, running_spec):
        insertions = self.make_execution(running_spec, seed=3)
        path = tmp_path / "exec.json"
        save_execution_json(insertions, path, "run")
        assert load_execution_json(path) == insertions

    def test_reloaded_log_drives_labeler(self, tmp_path, running_spec):
        """End to end: persist the log, reload, label, query."""
        run = small_run(running_spec, 150, seed=4)
        insertions = list(execution_from_derivation(run))
        path = tmp_path / "exec.json"
        save_execution_json(insertions, path, running_spec.name)
        scheme = DRL(running_spec)
        labeler = DRLExecutionLabeler(scheme, mode="logged")
        for ins in load_execution_json(path):
            labeler.insert(ins)
        reference = scheme.label_derivation(run)
        for v in run.graph.vertices():
            assert labeler.label(v) == reference[v]

    def test_bad_execution_format_rejected(self):
        with pytest.raises(FormatError):
            execution_from_json({"format": "nope"})
        with pytest.raises(FormatError):
            execution_from_xml(ET.Element("wrong"))


class TestLabelStore:
    def test_round_trip(self, tmp_path, running_spec):
        # reference labels are packed on the way in: the store decodes
        # to the packed representation of the same labels
        from repro.labeling.compact import CompactDRL

        run = small_run(running_spec, 150, seed=5)
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        final = {v: labels[v] for v in run.graph.vertices()}
        path = tmp_path / "labels.json"
        save_labels(final, running_spec, path)
        reloaded = load_labels(running_spec, path)
        packed = CompactDRL(running_spec)
        assert reloaded == {v: packed.pack(lab) for v, lab in final.items()}

    def test_packed_round_trip(self, tmp_path, running_spec):
        from repro.labeling.compact import CompactDRL

        run = small_run(running_spec, 150, seed=5)
        scheme = CompactDRL(running_spec)
        labels = scheme.label_derivation(run)
        final = {v: labels[v] for v in run.graph.vertices()}
        path = tmp_path / "labels.json"
        save_labels(final, running_spec, path)
        reloaded = load_labels(running_spec, path)
        assert reloaded == final

    def test_reloaded_labels_answer_queries(self, tmp_path, running_spec):
        from repro.graphs.reachability import reaches
        from repro.labeling.compact import CompactDRL

        run = small_run(running_spec, 120, seed=6)
        scheme = CompactDRL(running_spec)
        labels = scheme.label_derivation(run)
        final = {v: labels[v] for v in run.graph.vertices()}
        path = tmp_path / "labels.json"
        save_labels(final, running_spec, path)
        reloaded = load_labels(running_spec, path)
        vs = sorted(final)
        rng = random.Random(7)
        for _ in range(2000):
            a, b = rng.choice(vs), rng.choice(vs)
            assert scheme.query(reloaded[a], reloaded[b]) == reaches(
                run.graph, a, b
            )

    def test_bad_store_rejected(self, tmp_path, running_spec):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(FormatError):
            load_labels(running_spec, path)
