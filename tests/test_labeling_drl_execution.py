"""Tests for the execution-based DRL labeler (Section 5.3)."""

from __future__ import annotations

import random

import pytest

from repro.datasets import synthetic_spec, theorem1_grammar
from repro.errors import ExecutionError
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.workflow.execution import Insertion, execution_from_derivation

from tests.conftest import assert_labels_correct, small_run


class TestModeSetup:
    def test_unknown_mode_rejected(self, running_spec):
        scheme = DRL(running_spec)
        with pytest.raises(ExecutionError):
            DRLExecutionLabeler(scheme, mode="psychic")

    def test_name_mode_requires_naming_conditions(self):
        from repro.errors import SpecificationError

        spec = theorem1_grammar()  # violates condition 1
        scheme = DRL(spec, r_mode="one_r")
        with pytest.raises(SpecificationError):
            DRLExecutionLabeler(scheme, mode="name")

    def test_logged_mode_skips_naming_conditions(self):
        spec = theorem1_grammar()
        scheme = DRL(spec, r_mode="one_r")
        DRLExecutionLabeler(scheme, mode="logged")


class TestEquivalenceWithDerivationScheme:
    """Section 5.3: the converted scheme creates *the same* labels."""

    @pytest.mark.parametrize("mode", ["name", "logged"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_running_example(self, running_spec, mode, seed):
        run = small_run(running_spec, 200, seed=seed)
        scheme = DRL(running_spec)
        derivation_labels = scheme.label_derivation(run)
        exe = execution_from_derivation(run)  # deterministic order
        labeler = DRLExecutionLabeler(scheme, mode=mode)
        execution_labels = labeler.run(exe)
        for vid, label in execution_labels.items():
            assert label == derivation_labels[vid]

    @pytest.mark.parametrize("mode", ["name", "logged"])
    def test_bioaid(self, bioaid_spec, mode):
        run = small_run(bioaid_spec, 300, seed=3)
        scheme = DRL(bioaid_spec)
        derivation_labels = scheme.label_derivation(run)
        labeler = DRLExecutionLabeler(scheme, mode=mode)
        execution_labels = labeler.run(execution_from_derivation(run))
        for vid, label in execution_labels.items():
            assert label == derivation_labels[vid]

    def test_logged_mode_on_nonlinear_grammar(self):
        spec = theorem1_grammar()
        run = small_run(spec, 150, seed=4)
        scheme = DRL(spec, r_mode="one_r")
        derivation_labels = scheme.label_derivation(run)
        labeler = DRLExecutionLabeler(scheme, mode="logged")
        execution_labels = labeler.run(execution_from_derivation(run))
        for vid, label in execution_labels.items():
            assert label == derivation_labels[vid]


class TestRandomOrderCorrectness:
    """Arbitrary topological insertion orders still label correctly."""

    @pytest.mark.parametrize("mode", ["name", "logged"])
    @pytest.mark.parametrize("seed", [5, 6])
    def test_running_example(self, running_spec, mode, seed):
        run = small_run(running_spec, 200, seed=seed)
        scheme = DRL(running_spec)
        exe = execution_from_derivation(run, random.Random(seed))
        labeler = DRLExecutionLabeler(scheme, mode=mode)
        labels = labeler.run(exe)
        assert_labels_correct(
            run.graph, labels, scheme.query, sample=4000, rng=random.Random(seed)
        )

    def test_synthetic_linear(self, synthetic_linear_spec):
        run = small_run(synthetic_linear_spec, 250, seed=7)
        scheme = DRL(synthetic_linear_spec)
        exe = execution_from_derivation(run, random.Random(8))
        labels = DRLExecutionLabeler(scheme, mode="name").run(exe)
        assert_labels_correct(
            run.graph, labels, scheme.query, sample=4000, rng=random.Random(8)
        )

    def test_bioaid_logged(self, bioaid_spec):
        run = small_run(bioaid_spec, 250, seed=9)
        scheme = DRL(bioaid_spec)
        exe = execution_from_derivation(run, random.Random(10))
        labels = DRLExecutionLabeler(scheme, mode="logged").run(exe)
        assert_labels_correct(
            run.graph, labels, scheme.query, sample=4000, rng=random.Random(10)
        )


class TestOnTheFlyQueries:
    def test_queries_answered_during_execution(self, running_spec):
        """The headline capability: query as soon as data is produced."""
        from repro.graphs.digraph import NamedDAG
        from repro.graphs.reachability import reaches

        run = small_run(running_spec, 120, seed=11)
        scheme = DRL(running_spec)
        exe = execution_from_derivation(run, random.Random(12))
        labeler = DRLExecutionLabeler(scheme, mode="name")
        partial = NamedDAG()
        rng = random.Random(13)
        inserted = []
        for ins in exe:
            labeler.insert(ins)
            partial.add_vertex(ins.vid, ins.name)
            for p in ins.preds:
                partial.add_edge(p, ins.vid)
            inserted.append(ins.vid)
            for _ in range(5):
                a, b = rng.choice(inserted), rng.choice(inserted)
                assert scheme.query(
                    labeler.label(a), labeler.label(b)
                ) == reaches(partial, a, b)


class TestErrorHandling:
    def test_duplicate_insert_rejected(self, running_spec):
        run = small_run(running_spec, 60, seed=14)
        scheme = DRL(running_spec)
        exe = execution_from_derivation(run)
        labeler = DRLExecutionLabeler(scheme, mode="name")
        first = exe.insertions[0]
        labeler.insert(first)
        with pytest.raises(ExecutionError):
            labeler.insert(first)

    def test_wrong_first_vertex_rejected(self, running_spec):
        scheme = DRL(running_spec)
        labeler = DRLExecutionLabeler(scheme, mode="name")
        with pytest.raises(ExecutionError):
            labeler.insert(Insertion(vid=0, name="t0", preds=frozenset()))

    def test_first_vertex_with_preds_rejected(self, running_spec):
        scheme = DRL(running_spec)
        labeler = DRLExecutionLabeler(scheme, mode="name")
        with pytest.raises(ExecutionError):
            labeler.insert(Insertion(vid=5, name="s0", preds=frozenset((1,))))

    def test_unknown_internal_vertex_rejected(self, running_spec):
        run = small_run(running_spec, 60, seed=15)
        scheme = DRL(running_spec)
        exe = execution_from_derivation(run)
        labeler = DRLExecutionLabeler(scheme, mode="name")
        labeler.insert(exe.insertions[0])
        with pytest.raises(ExecutionError):
            labeler.insert(
                Insertion(vid=999, name="t5", preds=frozenset((exe.insertions[0].vid,)))
            )

    def test_logged_mode_requires_origin(self, running_spec):
        scheme = DRL(running_spec)
        labeler = DRLExecutionLabeler(scheme, mode="logged")
        with pytest.raises(ExecutionError):
            labeler.insert(Insertion(vid=0, name="s0", preds=frozenset()))

    def test_label_of_unknown_vertex(self, running_spec):
        scheme = DRL(running_spec)
        labeler = DRLExecutionLabeler(scheme, mode="name")
        with pytest.raises(ExecutionError):
            labeler.label(3)
