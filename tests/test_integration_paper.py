"""End-to-end reproduction of the paper's running example (Figures 3, 5, 9).

Builds exactly the derivation sketched in Figure 5 -- the loop runs twice,
the first copy's fork runs twice, one fork copy recurses through
``A -> h3 -> C -> h6 -> A -> h4`` -- and checks the artifacts the paper
derives from it: the explicit parse tree shape of Figure 9, the label of
``v5`` from Example 12, the query evaluations of Examples 11/13 and the
equivalence of the execution-based labeling of Example 14.
"""

from __future__ import annotations

import itertools

import pytest

from repro.graphs.reachability import reaches
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.parsetree.explicit import ExplicitParseTree, NodeKind
from repro.workflow.derivation import DerivationEngine
from repro.workflow.execution import execution_from_derivation


@pytest.fixture(scope="module")
def paper_run(running_spec):
    """The Figure 3 run: derivation steps in the Figure 5 order."""
    eng = DerivationEngine(running_spec)
    eng.begin()
    # [u1 / S(h1, h1)]
    loop_vid = next(v for v, h in eng.pending.items() if h == "L")
    loop_step = eng.expand(loop_vid, "L#0", copies=2)
    h1_first, h1_second = loop_step.copies
    # [u2 / P(h2, h2)] in the first loop copy
    template_h1 = running_spec.graph("L#0")
    fork_first = h1_first.mapping[template_h1.dag.vertices_named("F")[0]]
    fork_step = eng.expand(fork_first, "F#0", copies=2)
    h2_first, h2_second = fork_step.copies
    # the first fork copy recurses: A -> h3, B -> h5, C -> h6, A -> h4
    template_h2 = running_spec.graph("F#0")
    a_first = h2_first.mapping[template_h2.dag.vertices_named("A")[0]]
    h3_step = eng.expand(a_first, "A#0")
    (h3_inst,) = h3_step.copies
    template_h3 = running_spec.graph("A#0")
    b_vid = h3_inst.mapping[template_h3.dag.vertices_named("B")[0]]
    c_vid = h3_inst.mapping[template_h3.dag.vertices_named("C")[0]]
    h5_step = eng.expand(b_vid, "B#0")
    h6_step = eng.expand(c_vid, "C#0")
    (h6_inst,) = h6_step.copies
    template_h6 = running_spec.graph("C#0")
    a_inner = h6_inst.mapping[template_h6.dag.vertices_named("A")[0]]
    h4_step = eng.expand(a_inner, "A#1")
    # remaining composites terminate immediately (the "..." of Figure 3)
    while eng.pending:
        vid = min(eng.pending)
        head = eng.pending[vid]
        eng.expand(vid, {"A": "A#1", "F": "F#0"}[head])
    run = eng.finish()
    vertices = {
        "v1": run.start_instance.mapping[0],  # s0
        "v18": run.start_instance.mapping[2],  # t0
        "v2": h1_first.mapping[template_h1.source],  # s1, first loop copy
        "v15": h1_first.mapping[template_h1.sink],  # t1, first loop copy
        "v16": h1_second.mapping[template_h1.source],  # s1, second copy
        "v3": h2_first.mapping[template_h2.source],  # s2, first fork copy
        "v13": h2_second.mapping[template_h2.source],  # s2, second copy
        "v4": h3_inst.mapping[template_h3.source],  # s3
        "v11": h3_inst.mapping[template_h3.sink],  # t3
        "v5": h5_step.copies[0].mapping[0],  # s5 (B's body source)
        "v7": h6_inst.mapping[template_h6.source],  # s6
        "v8": h4_step.copies[0].mapping[0],  # s4 (recursion terminator)
    }
    return run, vertices


class TestFigure9TreeShape:
    def test_special_nodes_present(self, running_spec, paper_run):
        run, _ = paper_run
        tree = ExplicitParseTree(running_spec)
        tree.begin(run.start_instance)
        for step in run.steps:
            tree.apply_step(step)
        kinds = [n.kind for n in tree.nodes()]
        assert kinds.count(NodeKind.L) == 1
        assert kinds.count(NodeKind.F) == 2  # one per loop copy
        assert kinds.count(NodeKind.R) >= 1
        # Lemma 4.1 bound: 2 * |{L,F,A,B,C}| = 10
        assert tree.depth() <= 10

    def test_recursion_chain_is_flat(self, running_spec, paper_run):
        run, _ = paper_run
        tree = ExplicitParseTree(running_spec)
        tree.begin(run.start_instance)
        for step in run.steps:
            tree.apply_step(step)
        r_nodes = [n for n in tree.nodes() if n.kind is NodeKind.R]
        deep_chain = max(r_nodes, key=lambda n: len(n.children))
        # h3 followed by h6 followed by h4: flattened to three siblings
        assert [c.instance.key for c in deep_chain.children] == [
            "A#0",
            "C#0",
            "A#1",
        ]


class TestExample12LabelOfV5:
    def test_entry_sequence(self, running_spec, paper_run):
        run, vertices = paper_run
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        label = labels[vertices["v5"]]
        kinds = [e.kind for e in label]
        assert kinds == [
            NodeKind.N,  # x0: g0
            NodeKind.L,  # x1
            NodeKind.N,  # x2: first h1
            NodeKind.F,  # x3
            NodeKind.N,  # x4: first h2
            NodeKind.R,  # x5
            NodeKind.N,  # x6: h3
            NodeKind.N,  # x7: h5
        ]
        assert [e.index for e in label] == [0, 1, 1, 1, 1, 1, 1, 1]
        # Entry(x6, u4): u4 = the B vertex of h3; rec1 = B ~> C = true,
        # rec2 = C ~> B = false (Example 12)
        entry_x6 = label[6]
        assert entry_x6.skl.key == "A#0"
        assert entry_x6.rec1 is True
        assert entry_x6.rec2 is False

    def test_label_of_v16(self, running_spec, paper_run):
        run, vertices = paper_run
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        label = labels[vertices["v16"]]
        # Example 12: three entries ending in the second loop copy
        assert len(label) == 3
        assert label[1].kind is NodeKind.L
        assert label[2].index == 2


class TestExample11And13Queries:
    @pytest.mark.parametrize(
        "source,target,expected",
        [
            ("v5", "v16", True),   # LCA is the L node: series order
            ("v5", "v13", False),  # LCA is an F node: parallel copies
            ("v13", "v5", False),
            ("v5", "v8", True),    # LCA is the R node: rec1 flag
            ("v8", "v5", False),
            ("v5", "v11", True),   # LCA non-special: skeleton query
            ("v1", "v18", True),   # source reaches sink
            ("v18", "v1", False),
        ],
    )
    def test_paper_query(self, running_spec, paper_run, source, target, expected):
        run, vertices = paper_run
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        assert (
            scheme.query(labels[vertices[source]], labels[vertices[target]])
            is expected
        )
        # and the graph agrees
        assert reaches(run.graph, vertices[source], vertices[target]) is expected

    def test_all_pairs_against_graph(self, running_spec, paper_run):
        run, _ = paper_run
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        vs = sorted(run.graph.vertices())
        for a, b in itertools.product(vs, vs):
            assert scheme.query(labels[a], labels[b]) == reaches(run.graph, a, b)


class TestExample14Execution:
    def test_execution_reproduces_labels(self, running_spec, paper_run):
        run, _ = paper_run
        scheme = DRL(running_spec)
        derivation_labels = scheme.label_derivation(run)
        labeler = DRLExecutionLabeler(scheme, mode="name")
        execution_labels = labeler.run(execution_from_derivation(run))
        for vid, label in execution_labels.items():
            assert label == derivation_labels[vid]
