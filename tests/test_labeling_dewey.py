"""Tests for dynamic Dewey labels (ORDPATH/DDE family)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.errors import LabelingError
from repro.labeling.dewey import (
    DeweyTree,
    ROOT,
    document_order,
    is_ancestor,
    key_between,
    key_value,
    label_bits,
)


class TestKeys:
    def test_first_key(self):
        assert key_between(None, None) == (0, "")

    def test_append_uses_next_ordinal(self):
        assert key_between((0, ""), None) == (1, "")
        assert key_between((7, "101"), None) == (8, "")

    def test_prepend_uses_previous_ordinal(self):
        assert key_between(None, (0, "")) == (-1, "")

    def test_between_distant_ordinals(self):
        assert key_between((1, ""), (5, "")) == (2, "")

    def test_between_adjacent_ordinals(self):
        key = key_between((1, ""), (2, ""))
        assert key_value((1, "")) < key_value(key) < key_value((2, ""))

    def test_between_same_ordinal(self):
        left, right = (3, "01"), (3, "1")
        key = key_between(left, right)
        assert key_value(left) < key_value(key) < key_value(right)

    def test_between_is_always_strictly_between(self):
        rng = random.Random(1)
        keys = [(0, ""), (1, ""), (2, "")]
        for _ in range(300):
            ordered = sorted(keys, key=key_value)
            i = rng.randrange(len(ordered) - 1)
            fresh = key_between(ordered[i], ordered[i + 1])
            assert key_value(ordered[i]) < key_value(fresh) < key_value(
                ordered[i + 1]
            )
            keys.append(fresh)

    def test_tuple_order_equals_numeric_order(self):
        rng = random.Random(2)
        keys = [(0, ""), (1, "")]
        for _ in range(200):
            ordered = sorted(keys)
            i = rng.randrange(len(ordered) - 1)
            keys.append(key_between(ordered[i], ordered[i + 1]))
        by_tuple = sorted(keys)
        by_value = sorted(keys, key=key_value)
        assert by_tuple == by_value

    def test_invalid_between_rejected(self):
        with pytest.raises(LabelingError):
            key_between((1, ""), (1, ""))

    def test_invalid_tiebreak_rejected(self):
        with pytest.raises(LabelingError):
            key_value((0, "12"))


class TestTreeGrowth:
    def test_append_children_ordered(self):
        tree = DeweyTree()
        kids = [tree.append_child() for _ in range(5)]
        assert tree.ordered_children() == kids
        for a, b in zip(kids, kids[1:]):
            assert document_order(a, b) == -1

    def test_insert_before_and_after(self):
        tree = DeweyTree()
        first = tree.append_child()
        third = tree.append_child()
        second = tree.insert_after(first)
        zeroth = tree.insert_before(first)
        assert tree.ordered_children() == [zeroth, first, second, third]

    def test_prepend_child(self):
        tree = DeweyTree()
        last = tree.append_child()
        first = tree.prepend_child()
        assert tree.ordered_children() == [first, last]

    def test_existing_labels_never_change(self):
        tree = DeweyTree()
        anchor = tree.append_child()
        snapshot = tuple(anchor)
        for _ in range(50):
            tree.insert_after(anchor)
        assert tuple(anchor) == snapshot

    def test_unknown_parent_rejected(self):
        with pytest.raises(LabelingError):
            DeweyTree().append_child(((1, ""),))


class TestQueries:
    def build_random_tree(self, n, seed):
        rng = random.Random(seed)
        tree = DeweyTree()
        labels = [ROOT]
        parent_of = {ROOT: None}
        for _ in range(n):
            parent = labels[rng.randrange(len(labels))]
            action = rng.random()
            siblings = tree.ordered_children(parent)
            if siblings and action < 0.3:
                target = siblings[rng.randrange(len(siblings))]
                label = tree.insert_before(target)
            elif siblings and action < 0.6:
                target = siblings[rng.randrange(len(siblings))]
                label = tree.insert_after(target)
            else:
                label = tree.append_child(parent)
            parent_of[label] = parent
            labels.append(label)
        return tree, labels, parent_of

    def test_ancestor_matches_structure(self):
        tree, labels, parent_of = self.build_random_tree(60, seed=2)

        def true_ancestor(u, v):
            node = v
            while node is not None:
                if node == u:
                    return True
                node = parent_of[node]
            return False

        for u in labels:
            for v in labels:
                assert is_ancestor(u, v) == true_ancestor(u, v)

    def test_document_order_total(self):
        tree, labels, _ = self.build_random_tree(40, seed=3)
        non_root = [l for l in labels if l != ROOT]
        ordered = sorted(non_root)
        assert ordered == tree.nodes()

    def test_sibling_order_respected_after_inserts(self):
        tree, _, _ = self.build_random_tree(80, seed=4)
        for parent in [ROOT] + tree.nodes():
            children = tree.ordered_children(parent)
            values = [key_value(c[-1]) for c in children]
            assert values == sorted(values)
            assert len(set(values)) == len(values)

    def test_label_bits_linear_worst_case(self):
        # Figure 1's dynamic-tree lower bound: squeezing into one gap
        tree = DeweyTree()
        tree.append_child()
        label = tree.append_child()
        for _ in range(64):
            label = tree.insert_before(label)
        assert label_bits(label) >= 64

    def test_appends_stay_logarithmic(self):
        tree = DeweyTree()
        for _ in range(256):
            last = tree.append_child()
        assert label_bits(last) <= 2 + 10 + 2  # one (ordinal, '') component
