"""Tests for the tree-transform baseline [13]."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import LabelingError, UnsupportedWorkflowError
from repro.graphs.digraph import NamedDAG
from repro.graphs.random_graphs import random_chain, random_two_terminal_dag
from repro.graphs.reachability import reaches
from repro.labeling.tree_transform import TreeTransformIndex

from tests.conftest import assert_reaches_matches_bfs, small_run


def diamond_chain(depth: int) -> NamedDAG:
    """``depth`` stacked diamonds: 2^depth source-to-sink paths."""
    g = NamedDAG()
    g.add_vertex(0, "v0")
    tail = 0
    next_vid = 1
    for _ in range(depth):
        a, b, join = next_vid, next_vid + 1, next_vid + 2
        next_vid += 3
        for vid in (a, b, join):
            g.add_vertex(vid, f"v{vid}")
        g.add_edge(tail, a)
        g.add_edge(tail, b)
        g.add_edge(a, join)
        g.add_edge(b, join)
        tail = join
    return g


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bfs_on_random_dags(self, seed):
        g = random_two_terminal_dag(18, random.Random(seed)).dag
        index = TreeTransformIndex(g)
        assert_reaches_matches_bfs(g, index.reaches)

    def test_reflexive(self):
        g = random_chain(5).dag
        index = TreeTransformIndex(g)
        assert index.reaches(2, 2)

    def test_matches_bfs_on_small_runs(self, running_spec):
        run = small_run(running_spec, 80, seed=1)
        index = TreeTransformIndex(run.graph, max_tree_size=500_000)
        assert_reaches_matches_bfs(
            run.graph, index.reaches, sample=2000, rng=random.Random(2)
        )

    def test_unknown_vertex(self):
        g = random_chain(3).dag
        with pytest.raises(LabelingError):
            TreeTransformIndex(g).label(9)


class TestBlowUp:
    def test_tree_grows_exponentially_on_diamonds(self):
        sizes = []
        for depth in (2, 4, 6):
            index = TreeTransformIndex(diamond_chain(depth))
            sizes.append(index.tree_size)
        # each extra diamond pair should roughly 4x the tree
        assert sizes[1] > 3 * sizes[0]
        assert sizes[2] > 3 * sizes[1]

    def test_copies_grow_with_diamonds(self):
        index = TreeTransformIndex(diamond_chain(6))
        assert index.max_copies() >= 2**6

    def test_cap_triggers_unsupported(self):
        with pytest.raises(UnsupportedWorkflowError):
            TreeTransformIndex(diamond_chain(30), max_tree_size=10_000)

    def test_label_bits_linear_or_worse(self):
        # the paper's point: [13] yields linear-size labels on DAGs
        index = TreeTransformIndex(diamond_chain(8))
        g = diamond_chain(8)
        sink = max(g.vertices())
        assert index.label_bits(index.label(sink)) > len(g) * 4

    def test_trees_stay_small_on_trees(self):
        g = random_chain(50).dag
        index = TreeTransformIndex(g)
        assert index.tree_size == 50
        assert index.max_copies() == 1
