"""Tests for the random graph and insertion-order generators."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graphs.random_graphs import (
    random_chain,
    random_insertion_order,
    random_two_terminal_dag,
)


class TestRandomTwoTerminal:
    def test_size_and_terminals(self):
        g = random_two_terminal_dag(12, random.Random(1))
        assert len(g) == 12
        assert g.source == 0
        assert g.sink == 11

    def test_always_valid_and_spanning(self):
        for seed in range(25):
            g = random_two_terminal_dag(10, random.Random(seed))
            g.validate(require_spanning=True)

    def test_custom_names(self):
        names = [f"n{i}" for i in range(6)]
        g = random_two_terminal_dag(6, random.Random(2), names=names)
        assert sorted(g.names()) == sorted(names)

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(GraphError):
            random_two_terminal_dag(5, random.Random(0), names=["a"])

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            random_two_terminal_dag(1, random.Random(0))

    def test_deterministic_given_seed(self):
        g1 = random_two_terminal_dag(10, random.Random(7))
        g2 = random_two_terminal_dag(10, random.Random(7))
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_extra_edges_increase_density(self):
        sparse = random_two_terminal_dag(30, random.Random(3), extra_edge_prob=0.0)
        dense = random_two_terminal_dag(30, random.Random(3), extra_edge_prob=0.5)
        assert dense.dag.edge_count() > sparse.dag.edge_count()


class TestRandomChain:
    def test_chain_shape(self):
        g = random_chain(4)
        assert list(g.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_chain_needs_vertex(self):
        with pytest.raises(GraphError):
            random_chain(0)


class TestRandomInsertionOrder:
    def test_order_is_topological(self):
        g = random_two_terminal_dag(20, random.Random(5)).dag
        order = random_insertion_order(g, random.Random(6))
        pos = {v: i for i, v in enumerate(order)}
        for u, v in g.edges():
            assert pos[u] < pos[v]

    def test_order_covers_all_vertices(self):
        g = random_two_terminal_dag(15, random.Random(8)).dag
        order = random_insertion_order(g, random.Random(9))
        assert sorted(order) == sorted(g.vertices())

    def test_different_seeds_differ(self):
        g = random_two_terminal_dag(25, random.Random(10)).dag
        a = random_insertion_order(g, random.Random(1))
        b = random_insertion_order(g, random.Random(2))
        assert a != b  # overwhelmingly likely for 25 vertices
