"""Tests for interval [22] and prefix [18] tree labeling utilities."""

from __future__ import annotations

import random

import pytest

from repro.errors import LabelingError
from repro.labeling.tree_labels import IntervalTreeLabeling, PrefixLabeler


def random_tree(n, rng):
    """children map for a random rooted tree on nodes 0..n-1 (root 0)."""
    children = {i: [] for i in range(n)}
    parent = {}
    for v in range(1, n):
        p = rng.randrange(0, v)
        children[p].append(v)
        parent[v] = p
    return children, parent


def is_ancestor(parent, u, v):
    while v is not None:
        if v == u:
            return True
        v = parent.get(v)
    return False


class TestIntervalLabeling:
    def test_matches_ancestor_relation(self):
        rng = random.Random(1)
        for _ in range(10):
            children, parent = random_tree(30, rng)
            scheme = IntervalTreeLabeling(0, children)
            for u in range(30):
                for v in range(30):
                    expected = is_ancestor(parent, u, v)
                    actual = IntervalTreeLabeling.is_ancestor(
                        scheme.label(u), scheme.label(v)
                    )
                    assert actual == expected

    def test_root_interval_spans_everything(self):
        children, _ = random_tree(10, random.Random(2))
        scheme = IntervalTreeLabeling(0, children)
        pre, post = scheme.label(0)
        assert pre == 0
        assert post == 9

    def test_unknown_node(self):
        scheme = IntervalTreeLabeling(0, {0: []})
        with pytest.raises(LabelingError):
            scheme.label(42)

    def test_label_bits_positive(self):
        children, _ = random_tree(5, random.Random(3))
        scheme = IntervalTreeLabeling(0, children)
        assert IntervalTreeLabeling.label_bits(scheme.label(0)) >= 2


class TestPrefixLabeler:
    def test_prefix_is_ancestor_test(self):
        labeler = PrefixLabeler()
        a = labeler.attach()
        b = labeler.attach(a)
        c = labeler.attach(a)
        d = labeler.attach(b)
        assert PrefixLabeler.is_ancestor(a, d)
        assert PrefixLabeler.is_ancestor(b, d)
        assert not PrefixLabeler.is_ancestor(c, d)
        assert not PrefixLabeler.is_ancestor(d, a)

    def test_reflexive(self):
        labeler = PrefixLabeler()
        a = labeler.attach()
        assert PrefixLabeler.is_ancestor(a, a)

    def test_sibling_indexes_increase(self):
        labeler = PrefixLabeler()
        first = labeler.attach()
        second = labeler.attach()
        assert first == (1,)
        assert second == (2,)

    def test_unknown_parent_rejected(self):
        labeler = PrefixLabeler()
        with pytest.raises(LabelingError):
            labeler.attach((9, 9))

    def test_path_tree_labels_grow_linearly(self):
        # dynamic-tree lower bound witness: a path gives Theta(n)-bit labels
        labeler = PrefixLabeler()
        label = labeler.attach()
        for _ in range(63):
            label = labeler.attach(label)
        assert PrefixLabeler.label_bits(label) >= 64

    def test_bounded_depth_labels_logarithmic(self):
        # wide flat tree: one level, n children -> log n bits
        labeler = PrefixLabeler()
        last = None
        for _ in range(1024):
            last = labeler.attach()
        assert PrefixLabeler.label_bits(last) <= 11
