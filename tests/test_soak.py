"""Opt-in large-scale soak tests (set REPRO_SOAK=1 to enable).

The default suite keeps runs small for speed; these exercise the
paper-scale regime (tens of thousands of vertices) end to end.  Run::

    REPRO_SOAK=1 pytest tests/test_soak.py -q
"""

from __future__ import annotations

import os
import random

import pytest

from repro.datasets import bioaid
from repro.graphs.reachability import reaches
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation

soak = pytest.mark.skipif(
    not os.environ.get("REPRO_SOAK"),
    reason="soak tests are opt-in (set REPRO_SOAK=1)",
)


@soak
def test_paper_scale_run_correctness():
    """A 32K-vertex BioAID run: labels vs ground truth on sampled pairs."""
    spec = bioaid()
    scheme = DRL(spec, skeleton="tcl")
    run = sample_run(spec, 32_000, random.Random(2011))
    labels = scheme.label_derivation(run)
    g = run.graph
    vs = sorted(g.vertices())
    rng = random.Random(1)
    for _ in range(20_000):
        a, b = rng.choice(vs), rng.choice(vs)
        assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)
    run_bits = [scheme.label_bits(labels[v]) for v in vs]
    assert max(run_bits) < 80  # logarithmic regime


@soak
def test_paper_scale_execution_equivalence():
    """Execution-based labeling reproduces derivation labels at 16K."""
    spec = bioaid()
    scheme = DRL(spec, skeleton="tcl")
    run = sample_run(spec, 16_000, random.Random(7))
    reference = scheme.label_derivation(run)
    labeler = DRLExecutionLabeler(scheme, mode="name")
    labels = labeler.run(execution_from_derivation(run))
    for vid, label in labels.items():
        assert label == reference[vid]
