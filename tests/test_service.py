"""Tests for the provenance query service (repro.service)."""

from __future__ import annotations

import json
import random
import socket
import threading

import pytest

from repro.datasets import running_example
from repro.errors import (
    ExecutionError,
    LabelingError,
    ProtocolError,
    ServiceError,
    SessionNotFoundError,
)
from repro.graphs.reachability import reaches
from repro.service import (
    QueryEngine,
    ReproServer,
    ServiceClient,
    SessionManager,
    checkpoint_session,
    restore_session,
)
from repro.service.protocol import (
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_response,
    raise_for_response,
)
from repro.service.server import ReproService
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation


def make_execution(spec, size=200, seed=0):
    run = sample_run(spec, size, random.Random(seed))
    return run, execution_from_derivation(run)


@pytest.fixture(scope="module")
def run_and_execution(running_spec):
    return make_execution(running_spec)


# ---------------------------------------------------------------------------
# sessions
# ---------------------------------------------------------------------------


class TestSessionManager:
    def test_create_get_close(self, running_spec):
        manager = SessionManager()
        session = manager.create("a", running_spec)
        assert manager.get("a") is session
        assert "a" in manager and len(manager) == 1
        closed = manager.close("a")
        assert closed is session
        assert "a" not in manager

    def test_create_from_builtin_name(self):
        manager = SessionManager()
        session = manager.create("a", "running-example")
        assert session.spec.name == "running-example"

    def test_create_from_spec_file(self, tmp_path, running_spec):
        from repro.io import save_specification_json

        path = tmp_path / "spec.json"
        save_specification_json(running_spec, path)
        manager = SessionManager()
        session = manager.create("a", str(path))
        assert session.spec.name == running_spec.name

    def test_unknown_spec_rejected(self):
        with pytest.raises(ServiceError):
            SessionManager().create("a", "no-such-spec")

    def test_duplicate_name_rejected(self, running_spec):
        manager = SessionManager()
        manager.create("a", running_spec)
        with pytest.raises(ServiceError):
            manager.create("a", running_spec)

    def test_unknown_session(self):
        with pytest.raises(SessionNotFoundError):
            SessionManager().get("ghost")

    def test_closed_session_rejects_ingest(
        self, running_spec, run_and_execution
    ):
        _, execution = run_and_execution
        manager = SessionManager()
        session = manager.create("a", running_spec)
        manager.close("a")
        with pytest.raises(ServiceError):
            session.ingest(execution.insertions[0])

    def test_version_bumps(self, running_spec, run_and_execution):
        _, execution = run_and_execution
        manager = SessionManager()
        session = manager.create("a", running_spec)
        assert session.version == 0
        session.ingest(execution.insertions[0])
        assert session.version == 1
        session.ingest_many(execution.insertions[1:10])
        assert session.version == 2  # one bump per batch
        session.ingest_many([])
        assert session.version == 2  # empty batch is a no-op

    def test_failed_batch_keeps_applied_prefix(
        self, running_spec, run_and_execution
    ):
        """Labels are write-once: a failed batch keeps its applied
        prefix, bumps the version, and reports the failure."""
        _, execution = run_and_execution
        manager = SessionManager()
        session = manager.create("a", running_spec)
        events = list(execution.insertions[:10])
        poisoned = events[:5] + [events[0]] + events[5:]  # duplicate vid
        with pytest.raises(ExecutionError):
            session.ingest_many(poisoned)
        assert len(session) == 5  # the applied prefix survives
        assert session.version == 1  # partial batches still bump
        session.ingest_many(events[5:])  # resume from the prefix
        assert len(session) == 10


# ---------------------------------------------------------------------------
# query engine
# ---------------------------------------------------------------------------


class TestQueryEngine:
    def test_batch_matches_ground_truth(
        self, running_spec, run_and_execution
    ):
        run, execution = run_and_execution
        manager = SessionManager()
        engine = QueryEngine(manager)
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions)
        vids = sorted(run.graph.vertices())
        rng = random.Random(7)
        pairs = [
            (rng.choice(vids), rng.choice(vids)) for _ in range(500)
        ]
        answers = engine.query_many("a", pairs)
        expected = [reaches(run.graph, a, b) for a, b in pairs]
        assert answers == expected

    def test_kernel_and_fallback_paths_agree(
        self, running_spec, run_and_execution
    ):
        """use_batch_kernels=False (the per-pair fallback) answers and
        accounts identically to the batch-kernel fast path."""
        run, execution = run_and_execution
        vids = sorted(run.graph.vertices())
        rng = random.Random(11)
        pairs = [
            (rng.choice(vids), rng.choice(vids)) for _ in range(400)
        ]
        results = {}
        for use_kernels in (True, False):
            manager = SessionManager()
            engine = QueryEngine(manager, use_batch_kernels=use_kernels)
            manager.create("a", running_spec)
            engine.ingest("a", execution.insertions)
            results[use_kernels] = engine.query_many("a", pairs)
            stats = engine.stats()
            assert stats.queries == len(pairs)
            assert stats.cache_hits + stats.cache_misses == len(pairs)
        assert results[True] == results[False]
        assert results[True] == [
            reaches(run.graph, a, b) for a, b in pairs
        ]

    def test_kernel_path_used_for_every_dynamic_scheme(self, running_spec):
        """All service-hostable schemes ship a batch kernel."""
        from repro.schemes import registry as scheme_registry

        for name in scheme_registry.available(dynamic=True):
            assert scheme_registry.get(name).capabilities.batch, name

    def test_cache_hits_on_repeat(self, running_spec, run_and_execution):
        run, execution = run_and_execution
        manager = SessionManager()
        engine = QueryEngine(manager)
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions)
        vids = sorted(run.graph.vertices())
        pairs = [(vids[0], vids[-1]), (vids[-1], vids[0])]
        engine.query_many("a", pairs)
        before = engine.stats()
        engine.query_many("a", pairs)
        after = engine.stats()
        assert after.cache_hits == before.cache_hits + len(pairs)
        assert after.cache_misses == before.cache_misses
        assert after.hit_rate > 0

    def test_insert_invalidates_cache(self, running_spec):
        run, execution = make_execution(running_spec, size=150, seed=3)
        manager = SessionManager()
        engine = QueryEngine(manager)
        manager.create("a", running_spec)
        events = execution.insertions
        engine.ingest("a", events[:-1])
        pair = (events[0].vid, events[1].vid)
        engine.query("a", *pair)
        engine.query("a", *pair)
        assert engine.stats().cache_hits == 1
        engine.ingest("a", events[-1:])  # version bump
        engine.query("a", *pair)
        stats = engine.stats()
        assert stats.cache_hits == 1  # old entry no longer addressed
        assert stats.cache_misses == 2

    def test_lru_eviction(self, running_spec, run_and_execution):
        run, execution = run_and_execution
        manager = SessionManager()
        engine = QueryEngine(manager, cache_size=2)
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions)
        vids = sorted(run.graph.vertices())
        engine.query("a", vids[0], vids[1])
        engine.query("a", vids[0], vids[2])
        engine.query("a", vids[0], vids[3])  # evicts the first entry
        assert engine.stats().cache_entries == 2
        engine.query("a", vids[0], vids[1])
        assert engine.stats().cache_hits == 0

    def test_zero_cache_disables_caching(
        self, running_spec, run_and_execution
    ):
        run, execution = run_and_execution
        manager = SessionManager()
        engine = QueryEngine(manager, cache_size=0)
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions)
        vids = sorted(run.graph.vertices())
        engine.query("a", vids[0], vids[1])
        engine.query("a", vids[0], vids[1])
        stats = engine.stats()
        assert stats.cache_hits == 0 and stats.cache_entries == 0

    def test_unknown_vertex(self, running_spec, run_and_execution):
        _, execution = run_and_execution
        manager = SessionManager()
        engine = QueryEngine(manager)
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions)
        with pytest.raises(LabelingError):
            engine.query("a", 10 ** 9, 0)

    def test_reused_name_never_hits_old_cache(self, running_spec):
        """Closing a session and reusing its name must not serve the
        dead session's cached answers (sessions have unique uids)."""
        run1, exec1 = make_execution(running_spec, size=150, seed=41)
        run2, exec2 = make_execution(running_spec, size=150, seed=42)
        manager = SessionManager()
        engine = QueryEngine(manager)
        manager.create("r", running_spec)
        engine.ingest("r", exec1.insertions)
        vids1 = sorted(run1.graph.vertices())
        pairs1 = [(a, b) for a in vids1[:12] for b in vids1[:12]]
        engine.query_many("r", pairs1)  # populate the cache

        manager.close("r")
        manager.create("r", running_spec)
        engine.ingest("r", exec2.insertions)
        vids2 = sorted(run2.graph.vertices())
        pairs2 = [(a, b) for a in vids2[:12] for b in vids2[:12]]
        answers = engine.query_many("r", pairs2)
        expected = [reaches(run2.graph, a, b) for a, b in pairs2]
        assert answers == expected

    def test_queries_live_mid_run(self, running_spec):
        """The paper's headline: answers while the run is executing."""
        run, execution = make_execution(running_spec, size=200, seed=5)
        manager = SessionManager()
        engine = QueryEngine(manager)
        manager.create("a", running_spec)
        events = execution.insertions
        engine.ingest("a", events[: len(events) // 2])
        seen = sorted(ins.vid for ins in events[: len(events) // 2])
        rng = random.Random(11)
        pairs = [(rng.choice(seen), rng.choice(seen)) for _ in range(100)]
        answers = engine.query_many("a", pairs)
        expected = [reaches(run.graph, a, b) for a, b in pairs]
        assert answers == expected

    def test_failed_batch_leaves_stats_consistent(
        self, running_spec, run_and_execution
    ):
        """Regression: a LabelingError mid-batch used to skip phase 3,
        losing the batch's accounting and the computed answers.  The
        batch is now validated up front, so a poisoned batch changes
        neither counters nor cache, and the engine keeps serving."""
        run, execution = run_and_execution
        manager = SessionManager()
        engine = QueryEngine(manager)
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions)
        vids = sorted(run.graph.vertices())
        engine.query_many("a", [(vids[0], vids[1])])  # establish a baseline
        before = engine.stats()
        poisoned = [
            (vids[0], vids[1]),   # valid, already cached
            (vids[2], vids[3]),   # valid, would be a fresh miss
            (10 ** 9, vids[0]),   # unknown vertex: the whole batch fails
        ]
        with pytest.raises(LabelingError):
            engine.query_many("a", poisoned)
        after = engine.stats()
        assert after.queries == before.queries
        assert after.cache_hits == before.cache_hits
        assert after.cache_misses == before.cache_misses
        assert after.cache_entries == before.cache_entries
        assert after.query_seconds == before.query_seconds
        # hits + misses never drifts from queries
        assert after.cache_hits + after.cache_misses == after.queries
        # the engine still answers (and caches) normally afterwards
        answers = engine.query_many("a", [(vids[2], vids[3])] * 2)
        assert answers == [reaches(run.graph, vids[2], vids[3])] * 2
        final = engine.stats()
        assert final.queries == after.queries + 2

    def test_duplicate_pairs_cost_one_probe(
        self, running_spec, run_and_execution
    ):
        """Regression: N copies of one missing pair used to trigger N
        label probes; they are now deduped to a single computation."""
        run, execution = run_and_execution
        manager = SessionManager()
        engine = QueryEngine(manager)
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions)
        vids = sorted(run.graph.vertices())
        before = engine.stats()
        batch = [(vids[0], vids[-1])] * 1000
        answers = engine.query_many("a", batch)
        assert answers == [reaches(run.graph, vids[0], vids[-1])] * 1000
        after = engine.stats()
        assert after.queries == before.queries + 1000
        assert after.cache_misses == before.cache_misses + 1  # one probe
        assert after.cache_hits == before.cache_hits + 999
        assert after.cache_entries == before.cache_entries + 1
        assert after.cache_hits + after.cache_misses == after.queries


# ---------------------------------------------------------------------------
# lock striping
# ---------------------------------------------------------------------------


class TestShardedEngine:
    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            QueryEngine(SessionManager(), shards=0)
        with pytest.raises(ValueError):
            SessionManager(shards=0)

    def test_striped_answers_match_ground_truth(self, running_spec):
        """Correctness is shard-count independent: many sessions spread
        across 4 stripes answer exactly like the single-lock engine."""
        manager = SessionManager(shards=4)
        engine = QueryEngine(manager, shards=4)
        assert engine.shards == 4 and manager.shards == 4
        for i in range(6):
            name = f"s{i}"
            run, execution = make_execution(
                running_spec, size=120, seed=50 + i
            )
            manager.create(name, running_spec)
            engine.ingest(name, execution.insertions)
            vids = sorted(run.graph.vertices())
            rng = random.Random(i)
            pairs = [
                (rng.choice(vids), rng.choice(vids)) for _ in range(80)
            ]
            answers = engine.query_many(name, pairs)
            expected = [reaches(run.graph, a, b) for a, b in pairs]
            assert answers == expected
            # a second pass is answered from the session's own shard
            assert engine.query_many(name, pairs) == expected
        stats = engine.stats()
        assert stats.shards == 4
        assert stats.queries == 6 * 2 * 80
        assert stats.cache_hits + stats.cache_misses == stats.queries
        assert stats.cache_hits >= 6 * 80  # every repeat pass hit

    def test_capacity_is_split_across_shards(
        self, running_spec, run_and_execution
    ):
        """Total capacity is divided over the stripes; one session is
        bounded by its own shard's slice."""
        run, execution = run_and_execution
        manager = SessionManager()
        engine = QueryEngine(manager, cache_size=8, shards=4)
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions)
        vids = sorted(run.graph.vertices())
        for target in vids[1:6]:
            engine.query("a", vids[0], target)
        assert engine.stats().cache_entries == 2  # this shard's slice
        assert engine.stats().cache_capacity == 8

    def test_drop_session_entries_only_touches_own_shard(
        self, running_spec
    ):
        manager = SessionManager(shards=4)
        engine = QueryEngine(manager, shards=4)
        kept_run, kept_exec = make_execution(running_spec, size=80, seed=61)
        gone_run, gone_exec = make_execution(running_spec, size=80, seed=62)
        manager.create("kept", running_spec)
        manager.create("gone", running_spec)
        engine.ingest("kept", kept_exec.insertions)
        engine.ingest("gone", gone_exec.insertions)
        kept_vids = sorted(kept_run.graph.vertices())
        gone_vids = sorted(gone_run.graph.vertices())
        engine.query_many(
            "kept", [(kept_vids[0], v) for v in kept_vids[1:5]]
        )
        engine.query_many(
            "gone", [(gone_vids[0], v) for v in gone_vids[1:5]]
        )
        session = manager.close("gone")
        assert engine.drop_session_entries(session) == 4
        assert engine.stats().cache_entries == 4  # kept's entries remain

    def test_sharded_manager_hosts_many_sessions(self, running_spec):
        manager = SessionManager(shards=4)
        names = [f"run-{i}" for i in range(12)]
        for name in names:
            manager.create(name, running_spec)
        assert manager.names() == sorted(names)
        assert len(manager) == 12
        for name in names:
            assert name in manager
            assert manager.get(name).name == name
        with pytest.raises(ServiceError):
            manager.create(names[0], running_spec)
        for name in names[:6]:
            assert manager.close(name).closed
        assert len(manager) == 6
        with pytest.raises(SessionNotFoundError):
            manager.get(names[0])

    def test_sharded_concurrent_create_close(self, running_spec):
        """Create/close storms on distinct names never corrupt the
        striped registry."""
        manager = SessionManager(shards=4)
        engine = QueryEngine(manager, shards=4)
        errors = []

        def churn(worker):
            try:
                for i in range(12):
                    name = f"w{worker}-{i}"
                    manager.create(name, running_spec)
                    assert manager.get(name).name == name
                    engine.drop_session_entries(manager.close(name))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[0]
        assert len(manager) == 0


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_request_round_trip(self):
        request = Request(
            op="query", params={"session": "a", "source": 1, "target": 2},
            id=42,
        )
        decoded = decode_request(encode_request(request))
        assert decoded == request

    def test_response_round_trip(self):
        response = Response(ok=True, result={"answer": True}, id=7)
        decoded = decode_response(encode_response(response))
        assert decoded == response

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(json.dumps({"op": "explode"}))

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request("{not json")
        with pytest.raises(ProtocolError):
            decode_response("[1, 2]")

    def test_error_mapping_round_trip(self):
        for exc in (
            SessionNotFoundError("gone"),
            ExecutionError("bad insert"),
            LabelingError("no label"),
            ProtocolError("bad line"),
        ):
            response = decode_response(
                encode_response(error_response(exc, request_id=1))
            )
            with pytest.raises(type(exc)):
                raise_for_response(response)

    def test_missing_parameter(self):
        service = ReproService()
        response = service.handle(Request(op="query", params={}))
        assert not response.ok
        assert response.code == "protocol"

    def test_malformed_pairs_rejected_not_fatal(self):
        service = ReproService()
        service.manager.create("s", "running-example")
        for pairs in ([[1]], [[1, 2, 3]], "oops", [["a", "b"]]):
            response = service.handle(
                Request(op="query_batch",
                        params={"session": "s", "pairs": pairs})
            )
            assert not response.ok and response.code == "protocol"
        response = service.handle(
            Request(op="query",
                    params={"session": "s", "source": [1], "target": 0})
        )
        assert not response.ok and response.code == "protocol"

    def test_unexpected_exceptions_become_responses(self):
        """A poisoned request must never escape handle() and kill the
        connection (TCP) or the server process (stdio)."""
        service = ReproService()
        response = service.handle(
            Request(op="create_session",
                    params={"name": "c", "checkpoint": 12345})
        )
        assert not response.ok
        response = service.handle(Request(op="ping"))
        assert response.ok  # the service is still serving


# ---------------------------------------------------------------------------
# checkpoint / recovery
# ---------------------------------------------------------------------------


class TestCheckpoint:
    def test_mid_run_round_trip(self, running_spec, tmp_path):
        """A session checkpointed mid-execution and restored answers
        every query identically to the uninterrupted session."""
        run, execution = make_execution(running_spec, size=250, seed=9)
        events = execution.insertions
        half = len(events) // 2

        manager = SessionManager()
        live = manager.create("live", running_spec)
        live.ingest_many(events[:half])
        checkpoint_session(live, tmp_path / "ckpt")
        live.ingest_many(events[half:])  # the uninterrupted session

        other = SessionManager()
        restored = restore_session(other, tmp_path / "ckpt")
        assert restored.name == "live"
        assert len(restored) == half
        restored.ingest_many(events[half:])  # resume after recovery

        vids = sorted(run.graph.vertices())
        rng = random.Random(13)
        for _ in range(300):
            a, b = rng.choice(vids), rng.choice(vids)
            assert restored.query(a, b) == live.query(a, b)
        assert restored.labeler.labels == live.labeler.labels

    def test_restore_under_new_name(self, running_spec, tmp_path):
        _, execution = make_execution(running_spec, size=100, seed=1)
        manager = SessionManager()
        live = manager.create("live", running_spec)
        live.ingest_many(execution.insertions)
        checkpoint_session(live, tmp_path / "ckpt")
        restored = restore_session(manager, tmp_path / "ckpt", name="copy")
        assert restored.name == "copy"
        assert manager.get("copy") is restored
        assert restored.labeler.labels == live.labeler.labels

    def test_corrupt_labels_detected(self, running_spec, tmp_path):
        _, execution = make_execution(running_spec, size=80, seed=2)
        manager = SessionManager()
        live = manager.create("live", running_spec)
        live.ingest_many(execution.insertions)
        path = checkpoint_session(live, tmp_path / "ckpt")
        labels = json.loads((path / "labels.json").read_text())
        key = next(iter(labels["labels"]))
        labels["labels"].pop(key)
        (path / "labels.json").write_text(json.dumps(labels))
        with pytest.raises(ServiceError):
            restore_session(SessionManager(), path)

    def test_not_a_checkpoint(self, tmp_path):
        with pytest.raises(ServiceError):
            restore_session(SessionManager(), tmp_path)

    def test_recheckpoint_same_directory(self, running_spec, tmp_path):
        """A later checkpoint of the same session overwrites cleanly
        and no .tmp staging files are left behind."""
        _, execution = make_execution(running_spec, size=120, seed=14)
        events = execution.insertions
        manager = SessionManager()
        live = manager.create("live", running_spec)
        live.ingest_many(events[: len(events) // 2])
        checkpoint_session(live, tmp_path / "ckpt")
        live.ingest_many(events[len(events) // 2 :])
        path = checkpoint_session(live, tmp_path / "ckpt")
        assert not list(path.glob("*.tmp"))
        restored = restore_session(SessionManager(), path)
        assert len(restored) == len(events)

    def test_mixed_generation_detected(self, running_spec, tmp_path):
        """A manifest left over from an older generation (crash between
        staged renames) is reported, not replayed into wrong state."""
        _, execution = make_execution(running_spec, size=120, seed=15)
        events = execution.insertions
        manager = SessionManager()
        live = manager.create("live", running_spec)
        live.ingest_many(events[:40])
        path = checkpoint_session(live, tmp_path / "ckpt")
        old_manifest = (path / "manifest.json").read_text()
        live.ingest_many(events[40:])
        checkpoint_session(live, path)
        (path / "manifest.json").write_text(old_manifest)  # stale manifest
        with pytest.raises(ServiceError, match="inconsistent"):
            restore_session(SessionManager(), path)


# ---------------------------------------------------------------------------
# server / client end-to-end
# ---------------------------------------------------------------------------


@pytest.fixture()
def server():
    server = ReproServer(("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


class TestServer:
    def test_end_to_end(self, server, running_spec, tmp_path):
        run, execution = make_execution(running_spec, size=150, seed=4)
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.ping()
            client.create_session("demo", "running-example")
            assert client.list_sessions() == ["demo"]
            info = client.ingest("demo", execution.insertions)
            assert info["ingested"] == len(execution)

            vids = sorted(run.graph.vertices())
            rng = random.Random(17)
            pairs = [
                (rng.choice(vids), rng.choice(vids)) for _ in range(200)
            ]
            answers = client.query_batch("demo", pairs)
            expected = [reaches(run.graph, a, b) for a, b in pairs]
            assert answers == expected
            a, b = pairs[0]
            assert client.query("demo", a, b) == expected[0]

            snap = client.snapshot("demo", str(tmp_path / "ckpt"))
            assert snap["vertices"] == len(execution)
            client.create_session(
                "demo2", checkpoint=str(tmp_path / "ckpt")
            )
            assert client.query_batch("demo2", pairs) == expected

            stats = client.stats()
            assert stats["sessions"] == 2
            assert stats["queries"] >= 2 * len(pairs) + 1
            assert client.close_session("demo")["closed"] == "demo"

    def test_remote_errors_are_mapped(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            with pytest.raises(SessionNotFoundError):
                client.query("ghost", 0, 1)
            with pytest.raises(ServiceError):
                client.create_session("x", "no-such-spec")

    def test_two_connections_share_sessions(self, server, running_spec):
        _, execution = make_execution(running_spec, size=100, seed=6)
        with ServiceClient("127.0.0.1", server.port) as writer:
            writer.create_session("shared", "running-example")
            writer.ingest("shared", execution.insertions)
            with ServiceClient("127.0.0.1", server.port) as reader:
                assert "shared" in reader.list_sessions()
                first = execution.insertions[0].vid
                last = execution.insertions[-1].vid
                assert reader.query("shared", first, last) is True

    def test_stdio_transport(self, running_spec):
        import io as io_module

        from repro.service.server import serve_stdio

        _, execution = make_execution(running_spec, size=60, seed=8)
        lines = [
            json.dumps(
                {"op": "create_session", "id": 1, "name": "s",
                 "spec": "running-example"}
            ),
            json.dumps(
                {"op": "ingest", "id": 2, "session": "s",
                 "insertions": [
                     {"vid": ins.vid, "name": ins.name,
                      "preds": sorted(ins.preds),
                      "origin": {"key": ins.origin[0],
                                 "token": ins.origin[1],
                                 "tv": ins.origin[2]},
                      **({"slot": {"token": ins.slot[0],
                                   "tv": ins.slot[1]}}
                         if ins.slot else {})}
                     for ins in execution.insertions
                 ]}
            ),
            json.dumps({"op": "stats", "id": 3}),
            json.dumps({"op": "shutdown", "id": 4}),
            json.dumps({"op": "ping", "id": 5}),  # after shutdown: unread
        ]
        infile = io_module.StringIO("\n".join(lines) + "\n")
        outfile = io_module.StringIO()
        assert serve_stdio(ReproService(), infile, outfile) == 0
        replies = [
            json.loads(line)
            for line in outfile.getvalue().splitlines()
        ]
        assert len(replies) == 4  # the loop stops at shutdown
        assert all(reply["ok"] for reply in replies)
        assert replies[1]["result"]["ingested"] == len(execution)


def _raw_lines(port, lines, expect):
    """Send raw protocol lines over one TCP connection; return the
    decoded replies (the connection must survive all of them)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        reader = sock.makefile("r", encoding="utf-8")
        writer = sock.makefile("w", encoding="utf-8")
        replies = []
        for line in lines:
            writer.write(line + "\n")
            writer.flush()
            reply = reader.readline()
            assert reply, f"connection dropped after {line!r}"
            replies.append(json.loads(reply))
        assert len(replies) == expect
        return replies


class TestServerRobustness:
    """Poisoned input over a live TCP connection must always produce a
    structured error response on that same connection -- never a drop."""

    @pytest.fixture()
    def small_batch_server(self):
        service = ReproService(shards=2, max_batch=8)
        server = ReproServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def test_malformed_json_line(self, server):
        replies = _raw_lines(
            server.port,
            ["{not json", json.dumps({"op": "ping", "id": 2})],
            expect=2,
        )
        assert replies[0]["ok"] is False
        assert replies[0]["code"] == "protocol"
        assert replies[1]["ok"] is True  # same connection still serves

    def test_unknown_op(self, server):
        replies = _raw_lines(
            server.port,
            [json.dumps({"op": "explode", "id": 1}),
             json.dumps({"op": "ping", "id": 2})],
            expect=2,
        )
        assert replies[0]["ok"] is False
        assert replies[0]["code"] == "protocol"
        assert "explode" in replies[0]["error"]
        assert replies[1]["ok"] is True

    def test_oversized_query_batch(self, small_batch_server, running_spec):
        _, execution = make_execution(running_spec, size=60, seed=19)
        with ServiceClient(
            "127.0.0.1", small_batch_server.port
        ) as client:
            client.create_session("s", "running-example")
            client.ingest("s", execution.insertions[:8])
            vid = execution.insertions[0].vid
            with pytest.raises(ProtocolError, match="exceeds"):
                client.query_batch("s", [(vid, vid)] * 9)
            # an oversized ingest is the same structured refusal
            with pytest.raises(ProtocolError, match="exceeds"):
                client.ingest("s", execution.insertions[8:40])
            # chunked pipelining slips under the cap on one connection
            answers = client.query_batch("s", [(vid, vid)] * 40, chunk=8)
            assert answers == [True] * 40
            assert client.ping()

    def test_mid_batch_labeling_error(self, server, running_spec):
        _, execution = make_execution(running_spec, size=60, seed=20)
        with ServiceClient("127.0.0.1", server.port) as client:
            client.create_session("lab", "running-example")
            client.ingest("lab", execution.insertions)
            good = execution.insertions[0].vid
            before = client.stats()
            with pytest.raises(LabelingError):
                client.query_batch("lab", [(good, good), (good, 10 ** 9)])
            after = client.stats()
            # the failed batch left the counters untouched
            assert after["queries"] == before["queries"]
            assert after["cache_misses"] == before["cache_misses"]
            assert client.query("lab", good, good) is True
            client.close_session("lab")


class TestPipelinedClient:
    def test_chunked_matches_plain(self, server, running_spec):
        run, execution = make_execution(running_spec, size=150, seed=23)
        with ServiceClient("127.0.0.1", server.port) as client:
            client.create_session("pipe", "running-example")
            client.ingest("pipe", execution.insertions)
            vids = sorted(run.graph.vertices())
            rng = random.Random(29)
            pairs = [
                (rng.choice(vids), rng.choice(vids)) for _ in range(333)
            ]
            plain = client.query_batch("pipe", pairs)
            chunked = client.query_batch("pipe", pairs, chunk=32, window=4)
            assert chunked == plain
            expected = [reaches(run.graph, a, b) for a, b in pairs]
            assert plain == expected
            client.close_session("pipe")

    def test_pipeline_mixed_ops_in_request_order(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            results = client.pipeline(
                [
                    ("ping", {}),
                    ("create_session",
                     {"name": "px", "spec": "running-example"}),
                    ("list_sessions", {}),
                    ("close", {"session": "px"}),
                ]
            )
            assert results[0]["pong"] is True
            assert results[1]["session"] == "px"
            assert "px" in results[2]["sessions"]
            assert results[3]["closed"] == "px"

    def test_pipeline_failure_drains_connection(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            with pytest.raises(SessionNotFoundError):
                client.pipeline(
                    [
                        ("ping", {}),
                        ("query",
                         {"session": "ghost", "source": 0, "target": 1}),
                        ("ping", {}),
                    ]
                )
            assert client.ping()  # every response was drained

    def test_pipeline_matches_out_of_order_ids(self):
        """A relay (or future server) may reorder responses; the client
        must match them back to requests by id."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def reversing_server():
            conn, _ = listener.accept()
            with conn:
                stream = conn.makefile("rw", encoding="utf-8")
                requests = [json.loads(stream.readline()) for _ in range(3)]
                for request in reversed(requests):
                    stream.write(
                        json.dumps(
                            {
                                "ok": True,
                                "id": request["id"],
                                "result": {"echo": request["id"]},
                            }
                        )
                        + "\n"
                    )
                stream.flush()

        thread = threading.Thread(target=reversing_server, daemon=True)
        thread.start()
        try:
            client = ServiceClient("127.0.0.1", port)
            try:
                results = client.pipeline([("ping", {})] * 3, window=3)
                assert [r["echo"] for r in results] == [1, 2, 3]
            finally:
                client.close()
        finally:
            thread.join(timeout=10)
            listener.close()


class TestSelftest:
    def test_cli_selftest_passes(self, capsys):
        from repro.cli import main

        assert main(["serve", "--selftest", "--size", "150"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out
        assert "pipelined query_batch verified" in out

    def test_cli_selftest_single_shard(self, capsys):
        from repro.cli import main

        assert main(
            ["serve", "--selftest", "--size", "120", "--shards", "1"]
        ) == 0
        assert "all checks passed" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# concurrency soak
# ---------------------------------------------------------------------------


class TestConcurrency:
    def test_ingest_and_query_soak(self, running_spec):
        """One writer streams a run in while readers batch-query the
        already-labeled prefix; every answer must match ground truth."""
        run, execution = make_execution(running_spec, size=400, seed=21)
        manager = SessionManager()
        engine = QueryEngine(manager, cache_size=4096)
        manager.create("soak", running_spec)
        events = execution.insertions
        done = threading.Event()
        errors = []

        def writer():
            try:
                for start in range(0, len(events), 16):
                    engine.ingest("soak", events[start : start + 16])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                done.set()

        def reader(seed):
            rng = random.Random(seed)
            try:
                while not done.is_set():
                    session = manager.get("soak")
                    with session.lock:
                        seen = list(session.labeler.labels)
                    if len(seen) < 2:
                        continue
                    pairs = [
                        (rng.choice(seen), rng.choice(seen))
                        for _ in range(50)
                    ]
                    answers = engine.query_many("soak", pairs)
                    for (a, b), answer in zip(pairs, answers):
                        if answer != reaches(run.graph, a, b):
                            errors.append(
                                AssertionError(f"wrong answer {a}~>{b}")
                            )
                            return
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader, args=(seed,))
            for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[0]
        assert len(manager.get("soak")) == len(events)

    def test_concurrent_sessions(self, running_spec):
        """Many sessions ingesting in parallel stay fully isolated."""
        manager = SessionManager()
        engine = QueryEngine(manager)
        runs = {}
        for i in range(4):
            name = f"s{i}"
            run, execution = make_execution(
                running_spec, size=120, seed=30 + i
            )
            runs[name] = (run, execution)
            manager.create(name, running_spec)

        errors = []

        def work(name):
            run, execution = runs[name]
            try:
                engine.ingest(name, execution.insertions)
                vids = sorted(run.graph.vertices())
                rng = random.Random(name)
                pairs = [
                    (rng.choice(vids), rng.choice(vids))
                    for _ in range(100)
                ]
                answers = engine.query_many(name, pairs)
                expected = [reaches(run.graph, a, b) for a, b in pairs]
                assert answers == expected
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((name, exc))

        threads = [
            threading.Thread(target=work, args=(name,)) for name in runs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert engine.stats().ingested == sum(
            len(execution) for _, execution in runs.values()
        )
