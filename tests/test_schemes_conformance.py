"""Cross-scheme conformance: every registered scheme vs BFS ground truth.

One parametrized suite replaces the per-scheme ground-truth loops: for
every scheme name in :mod:`repro.schemes.registry` and every shared
workload fixture (random two-terminal DAGs, the running example, the
non-recursive BioAID spec, the Figure 12 path grammar), the scheme is
built through the registry and its ``reaches`` answers are compared
against BFS on the materialized graph.  Schemes that declare a workload
unsupported are *skipped with their own reason* -- but the coverage
guard at the bottom fails the suite if a registered scheme is never
exercised at all, so registering a new scheme without a conformance
entry breaks CI by construction.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.errors import (
    LabelingError,
    ServiceError,
    UnsupportedWorkflowError,
)
from repro.graphs.random_graphs import random_two_terminal_dag
from repro.schemes import (
    DynamicScheme,
    Scheme,
    StaticScheme,
    Workload,
    registry,
)
from repro.workflow.derivation import sample_run

from tests.conftest import assert_reaches_matches_bfs

# Every scheme the registry is expected to carry.  A newly registered
# scheme must be added here (and thereby to the conformance matrix);
# the guard tests fail otherwise.
EXPECTED_SCHEMES = {
    "chains",
    "drl",
    "grail",
    "naive",
    "path-position",
    "skl",
    "tree-transform",
    "twohop",
}

# (workload id, factory) -- shared across every scheme.  Factories are
# deferred so collection stays cheap; results are cached per session.
_WORKLOAD_CACHE = {}


def _random_dag_workload(seed):
    graph = random_two_terminal_dag(28, random.Random(seed)).dag
    return Workload.from_graph(graph)


def _run_workload(spec_factory, size, seed):
    spec = spec_factory()
    return Workload.from_run(spec, sample_run(spec, size, random.Random(seed)))


def _workload(name):
    if name not in _WORKLOAD_CACHE:
        from repro.datasets import bioaid, fig12_path_grammar, running_example

        factories = {
            "random-dag-0": lambda: _random_dag_workload(0),
            "random-dag-1": lambda: _random_dag_workload(1),
            "running-example": lambda: _run_workload(
                running_example, 150, 3
            ),
            "bioaid-norec": lambda: _run_workload(
                lambda: bioaid(recursive=False), 150, 5
            ),
            "fig12-path": lambda: _run_workload(fig12_path_grammar, 60, 7),
        }
        _WORKLOAD_CACHE[name] = factories[name]()
    return _WORKLOAD_CACHE[name]


WORKLOAD_IDS = [
    "random-dag-0",
    "random-dag-1",
    "running-example",
    "bioaid-norec",
    "fig12-path",
]

# exhaustive all-pairs on the small workloads, sampled on the runs
_SAMPLE = {
    "running-example": 4000,
    "bioaid-norec": 4000,
}


def _build_or_skip(scheme_name, workload_id):
    workload = _workload(workload_id)
    cls = registry.get(scheme_name)
    reason = cls.supports(workload)
    if reason is not None:
        pytest.skip(reason)
    try:
        return registry.build(scheme_name, workload), workload
    except UnsupportedWorkflowError as exc:
        # e.g. the tree transform's blow-up guard on wide fork runs
        pytest.skip(str(exc))


class TestConformance:
    @pytest.mark.parametrize("workload_id", WORKLOAD_IDS)
    @pytest.mark.parametrize("scheme_name", sorted(EXPECTED_SCHEMES))
    def test_matches_bfs(self, scheme_name, workload_id):
        scheme, workload = _build_or_skip(scheme_name, workload_id)
        assert_reaches_matches_bfs(
            workload.graph,
            scheme.reaches,
            sample=_SAMPLE.get(workload_id),
            rng=random.Random(99),
        )

    @pytest.mark.parametrize("scheme_name", sorted(EXPECTED_SCHEMES))
    def test_reflexive_and_accounted(self, scheme_name):
        """Every scheme is reflexive, bit-accounted, and label-complete."""
        workload_id = (
            "fig12-path" if scheme_name == "path-position" else "random-dag-0"
        )
        if scheme_name in ("drl", "skl"):
            workload_id = "running-example"
        if scheme_name == "skl":
            workload_id = "bioaid-norec"
        scheme, workload = _build_or_skip(scheme_name, workload_id)
        vertices = sorted(workload.graph.vertices())
        assert sorted(scheme.labeled_vertices()) == vertices
        for v in vertices[:10]:
            assert scheme.reaches(v, v)
            assert scheme.label_bits_of(v) >= 0
            scheme.label_of(v)  # must not raise
        assert scheme.total_bits() >= 0
        with pytest.raises(LabelingError):
            scheme.label_of(10**9)


class TestRegistryContract:
    def test_every_scheme_has_a_conformance_entry(self):
        """Registering a scheme without adding it here fails the suite."""
        assert set(registry.available()) == EXPECTED_SCHEMES

    def test_capability_typing(self):
        for name in registry.available():
            cls = registry.get(name)
            assert issubclass(cls, Scheme)
            if cls.capabilities.dynamic:
                assert issubclass(cls, DynamicScheme)
            else:
                assert issubclass(cls, StaticScheme)

    def test_dynamic_filter(self):
        dynamic = set(registry.available(dynamic=True))
        static = set(registry.available(dynamic=False))
        assert dynamic == {"drl", "naive", "path-position"}
        assert dynamic | static == EXPECTED_SCHEMES
        assert not dynamic & static

    def test_names_are_normalized(self):
        assert registry.get("DRL").name == "drl"
        assert registry.get("tree_transform").name == "tree-transform"

    def test_unknown_name_rejected(self):
        with pytest.raises(LabelingError):
            registry.get("no-such-scheme")

    def test_static_scheme_cannot_open_a_session(self):
        with pytest.raises(ServiceError):
            registry.open_dynamic("grail")

    def test_describe_is_wire_serializable(self):
        import json

        records = registry.describe()
        assert {r["name"] for r in records} == EXPECTED_SCHEMES
        json.dumps(records)  # must not raise
        for record in records:
            assert set(record) >= {"name", "dynamic", "exact", "needs_spec"}

    def test_grail_is_the_only_inexact_filter(self):
        inexact = {
            name
            for name in registry.available()
            if not registry.get(name).capabilities.exact
        }
        assert inexact == {"grail"}


class TestProtocolShims:
    """The old drifted names survive as deprecation shims on adapters."""

    def test_query_and_may_reach_delegate_to_reaches(self):
        workload = _workload("random-dag-0")
        scheme = registry.build("grail", workload)
        u, v = sorted(workload.graph.vertices())[:2]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert scheme.query(u, v) == scheme.reaches(u, v)
            assert scheme.may_reach(u, v) == scheme.reaches(u, v)
        assert len(caught) == 2
        assert all(w.category is DeprecationWarning for w in caught)
        assert all("reaches" in str(w.message) for w in caught)


class TestDynamicIncrementality:
    """Dynamic schemes answer correctly mid-stream; labels are final."""

    @pytest.mark.parametrize("scheme_name", ["drl", "naive", "path-position"])
    def test_labels_final_mid_stream(self, scheme_name):
        workload_id = (
            "fig12-path" if scheme_name == "path-position" else
            "running-example"
        )
        workload = _workload(workload_id)
        scheme = registry.open_dynamic(scheme_name, workload.spec)
        insertions = workload.insertions
        half = len(insertions) // 2
        for insertion in insertions[:half]:
            scheme.insert(insertion)
        frozen = {v: scheme.label_of(v) for v in scheme.labeled_vertices()}
        seen = sorted(frozen)
        rng = random.Random(13)
        pairs = [
            (rng.choice(seen), rng.choice(seen)) for _ in range(400)
        ]
        from repro.graphs.reachability import reaches as bfs

        for a, b in pairs:
            assert scheme.reaches(a, b) == bfs(workload.graph, a, b)
        for insertion in insertions[half:]:
            scheme.insert(insertion)
        for vid, label in frozen.items():
            assert scheme.label_of(vid) == label, "label changed after insert"
