"""Tests for grammar analysis: induces, recursion, classification."""

from __future__ import annotations

import pytest

from repro.datasets import (
    bioaid,
    fig12_path_grammar,
    running_example,
    synthetic_spec,
    theorem1_grammar,
)
from repro.graphs.two_terminal import TwoTerminalGraph
from repro.workflow.grammar import (
    GrammarClass,
    analyze_grammar,
    direct_induces,
    induces_closure,
)
from repro.workflow.specification import START_KEY, make_spec


def chain(names):
    return TwoTerminalGraph.build(
        list(enumerate(names)), [(i, i + 1) for i in range(len(names) - 1)]
    )


class TestInduces:
    def test_direct_induces_running_example(self, running_spec):
        rel = direct_induces(running_spec)
        assert "F" in rel["L"]
        assert "A" in rel["F"]
        assert {"B", "C"} <= rel["A"]
        assert "A" in rel["C"]

    def test_closure_is_reflexive(self, running_spec):
        closure = induces_closure(running_spec)
        for name in running_spec.composite_names:
            assert name in closure[name]

    def test_closure_transitivity(self, running_spec):
        closure = induces_closure(running_spec)
        # L |-> F |-> A |-> C |-> A: L induces everything below it
        assert {"F", "A", "B", "C"} <= closure["L"]
        # Example 6: A induces B and C; C induces A
        assert {"B", "C"} <= closure["A"]
        assert "A" in closure["C"]
        # but B induces nothing composite (only itself and its atomics)
        composites = running_spec.composite_names
        assert closure["B"] & composites == {"B"}


class TestRecursiveVertices:
    def test_running_example_recursive_vertices(self, running_spec):
        info = analyze_grammar(running_spec)
        h3 = running_spec.graph("A#0")
        rec = info.recursive_vertices["A#0"]
        assert len(rec) == 1
        (v,) = rec
        assert h3.name(v) == "C"  # Example 6

    def test_h6_recursive_vertex(self, running_spec):
        info = analyze_grammar(running_spec)
        h6 = running_spec.graph("C#0")
        rec = info.recursive_vertices["C#0"]
        assert len(rec) == 1
        assert h6.name(next(iter(rec))) == "A"

    def test_start_graph_never_recursive(self, running_spec):
        info = analyze_grammar(running_spec)
        assert info.recursive_vertices[START_KEY] == frozenset()

    def test_designated_is_the_unique_recursive_vertex(self, running_spec):
        info = analyze_grammar(running_spec)
        assert info.designated_recursive["A#0"] in info.recursive_vertices["A#0"]
        assert info.designated_recursive["A#1"] is None
        assert info.is_designated("A#0", info.designated_recursive["A#0"])


class TestClassification:
    def test_running_example_linear(self, running_spec):
        info = analyze_grammar(running_spec)
        assert info.grammar_class is GrammarClass.LINEAR_RECURSIVE
        assert info.is_recursive
        assert info.is_linear
        assert not info.parallel_recursive

    def test_theorem1_parallel_recursive(self, theorem1_spec):
        info = analyze_grammar(theorem1_spec)
        assert info.grammar_class is GrammarClass.NONLINEAR_RECURSIVE
        assert info.parallel_recursive  # Example 7 / Definition 13

    def test_fig12_series_recursive_not_parallel(self):
        info = analyze_grammar(fig12_path_grammar())
        assert info.grammar_class is GrammarClass.NONLINEAR_RECURSIVE
        assert not info.parallel_recursive  # the open-problem class

    def test_bioaid_linear(self):
        info = analyze_grammar(bioaid())
        assert info.grammar_class is GrammarClass.LINEAR_RECURSIVE

    def test_bioaid_norec_nonrecursive(self):
        info = analyze_grammar(bioaid(recursive=False))
        assert info.grammar_class is GrammarClass.NON_RECURSIVE
        assert not info.is_recursive

    def test_synthetic_families(self):
        assert (
            analyze_grammar(synthetic_spec(10, 5, linear=True)).grammar_class
            is GrammarClass.LINEAR_RECURSIVE
        )
        nonlinear = analyze_grammar(synthetic_spec(10, 5, linear=False))
        assert nonlinear.grammar_class is GrammarClass.NONLINEAR_RECURSIVE
        assert nonlinear.parallel_recursive

    def test_recursive_loop_body_is_nonlinear(self):
        # Lemma 5.1: a loop whose body recurses back to the loop yields
        # S(h, h) productions with two recursive vertices.
        g0 = chain(["s", "X", "t"])
        hx = chain(["sx", "Y", "tx"])
        hy = chain(["sy", "X", "ty"])
        hy2 = chain(["sy2", "ty2"])
        spec = make_spec(
            g0, [("X", hx), ("Y", hy), ("Y", hy2)], loops=["X"], name="looprec"
        )
        info = analyze_grammar(spec)
        assert info.grammar_class is GrammarClass.NONLINEAR_RECURSIVE
        # loop bodies are never R-compressed
        assert info.designated_recursive["X#0"] is None

    def test_recursive_fork_body_is_parallel_recursive(self):
        g0 = chain(["s", "X", "t"])
        hx = chain(["sx", "Y", "tx"])
        hy = chain(["sy", "X", "ty"])
        hy2 = chain(["sy2", "ty2"])
        spec = make_spec(
            g0, [("X", hx), ("Y", hy), ("Y", hy2)], forks=["X"], name="forkrec"
        )
        info = analyze_grammar(spec)
        assert info.grammar_class is GrammarClass.NONLINEAR_RECURSIVE
        assert info.parallel_recursive


class TestEscapeImplementations:
    def test_escape_prefers_non_recursive_bodies(self, running_spec):
        info = analyze_grammar(running_spec)
        assert info.escape_impl["A"] == "A#1"  # h4 has no recursion

    def test_escape_exists_for_every_composite(self, running_spec):
        info = analyze_grammar(running_spec)
        assert set(info.escape_impl) == running_spec.composite_names

    def test_productive_contains_all_names(self, running_spec):
        info = analyze_grammar(running_spec)
        assert running_spec.composite_names <= info.productive
        assert running_spec.atomic_names <= info.productive
