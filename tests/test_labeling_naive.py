"""Tests for the naive Section 3.2 dynamic scheme."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import ExecutionError, LabelingError
from repro.graphs.random_graphs import random_two_terminal_dag
from repro.graphs.reachability import reaches
from repro.labeling.naive_dynamic import NaiveDynamicScheme
from repro.workflow.execution import execution_from_derivation

from tests.conftest import assert_reaches_matches_bfs, small_run


class TestBasics:
    def test_label_bits_are_index_minus_one(self):
        scheme = NaiveDynamicScheme()
        labels = [scheme.insert(i, preds=[]) for i in range(5)]
        assert [l.bits for l in labels] == [0, 1, 2, 3, 4]

    def test_duplicate_insert_rejected(self):
        scheme = NaiveDynamicScheme()
        scheme.insert(1, preds=[])
        with pytest.raises(ExecutionError):
            scheme.insert(1, preds=[])

    def test_forward_reference_rejected(self):
        scheme = NaiveDynamicScheme()
        with pytest.raises(ExecutionError):
            scheme.insert(1, preds=[99])

    def test_unlabeled_lookup_rejected(self):
        with pytest.raises(LabelingError):
            NaiveDynamicScheme().label(0)

    def test_reflexive_query(self):
        scheme = NaiveDynamicScheme()
        label = scheme.insert(1, preds=[])
        assert NaiveDynamicScheme.query(label, label)


class TestCorrectness:
    def test_matches_bfs_on_random_dags(self):
        rng = random.Random(11)
        for _ in range(8):
            g = random_two_terminal_dag(25, rng).dag
            scheme = NaiveDynamicScheme()
            for v in g.topological_order():
                scheme.insert(v, preds=g.predecessors(v))
            assert_reaches_matches_bfs(
                g, lambda a, b: scheme.query(scheme.label(a), scheme.label(b))
            )

    def test_matches_bfs_on_workflow_executions(self, running_spec):
        run = small_run(running_spec, 150, seed=2)
        exe = execution_from_derivation(run, random.Random(3))
        scheme = NaiveDynamicScheme()
        labels = scheme.insert_all(exe)
        assert_reaches_matches_bfs(
            run.graph,
            lambda a, b: scheme.query(labels[a], labels[b]),
            sample=5000,
            rng=random.Random(4),
        )

    def test_intermediate_correctness(self):
        # labels must answer correctly at every intermediate prefix
        rng = random.Random(5)
        g = random_two_terminal_dag(20, rng).dag
        scheme = NaiveDynamicScheme()
        inserted = []
        for v in g.topological_order():
            scheme.insert(v, preds=g.predecessors(v))
            inserted.append(v)
            for a, b in itertools.product(inserted, repeat=2):
                assert scheme.query(scheme.label(a), scheme.label(b)) == reaches(
                    g, a, b
                )
            if len(inserted) > 12:
                break


class TestBounds:
    def test_max_label_is_n_minus_1_bits(self):
        # the Theta(n) upper bound of Section 3.2
        scheme = NaiveDynamicScheme()
        n = 50
        for i in range(n):
            scheme.insert(i, preds=[i - 1] if i else [])
        assert scheme.label(n - 1).bits == n - 1
