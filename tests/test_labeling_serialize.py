"""Tests for binary label serialization."""

from __future__ import annotations

import pytest

from repro.errors import LabelingError
from repro.labeling.drl import DRL, Entry, SkeletonRef
from repro.labeling.serialize import BitReader, BitWriter, LabelCodec
from repro.parsetree.explicit import NodeKind

from tests.conftest import small_run


class TestBitBuffers:
    def test_uint_round_trip(self):
        writer = BitWriter()
        writer.write_uint(5, 3)
        writer.write_uint(0, 1)
        writer.write_uint(255, 8)
        reader = BitReader(writer.to_bytes(), len(writer))
        assert reader.read_uint(3) == 5
        assert reader.read_uint(1) == 0
        assert reader.read_uint(8) == 255
        assert reader.exhausted

    def test_gamma_round_trip(self):
        writer = BitWriter()
        values = [0, 1, 2, 3, 7, 8, 100, 12345]
        for v in values:
            writer.write_gamma(v)
        reader = BitReader(writer.to_bytes(), len(writer))
        assert [reader.read_gamma() for _ in values] == values

    def test_value_too_wide_rejected(self):
        with pytest.raises(LabelingError):
            BitWriter().write_uint(8, 3)

    def test_overread_rejected(self):
        writer = BitWriter()
        writer.write_bit(1)
        reader = BitReader(writer.to_bytes(), len(writer))
        reader.read_bit()
        with pytest.raises(LabelingError):
            reader.read_bit()


class TestLabelCodec:
    def test_round_trip_on_real_labels(self, running_spec):
        run = small_run(running_spec, 200, seed=1)
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        codec = LabelCodec(running_spec)
        for label in labels.values():
            payload, bits = codec.encode(label)
            assert codec.decode(payload, bits) == label

    def test_encoded_size_tracks_accounted_size(self, running_spec):
        # gamma coding costs at most ~2x the accounted index bits + O(1)
        run = small_run(running_spec, 300, seed=2)
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        codec = LabelCodec(running_spec)
        for label in labels.values():
            _, bits = codec.encode(label)
            accounted = scheme.label_bits(label)
            assert bits <= 3 * accounted + 16

    def test_special_entries_encode(self, running_spec):
        codec = LabelCodec(running_spec)
        label = (
            Entry(0, NodeKind.N, SkeletonRef("g0", 1)),
            Entry(3, NodeKind.L),
            Entry(2, NodeKind.R),
            Entry(1, NodeKind.F),
            Entry(7, NodeKind.N, SkeletonRef("A#0", 2), rec1=True, rec2=False),
        )
        payload, bits = codec.encode(label)
        assert codec.decode(payload, bits) == label
