"""Tests for execution sequences (Definition 8's input model)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ExecutionError
from repro.workflow.derivation import DerivationEngine
from repro.workflow.execution import (
    deterministic_insertion_order,
    execution_from_derivation,
)

from tests.conftest import small_run


class TestExecutionGeneration:
    def test_covers_all_vertices_once(self, running_spec):
        run = small_run(running_spec, 120, seed=1)
        exe = execution_from_derivation(run)
        vids = [ins.vid for ins in exe]
        assert sorted(vids) == sorted(run.graph.vertices())
        assert len(set(vids)) == len(vids)

    def test_insertions_topological(self, running_spec):
        run = small_run(running_spec, 120, seed=2)
        exe = execution_from_derivation(run, random.Random(3))
        seen = set()
        for ins in exe:
            assert ins.preds <= seen
            seen.add(ins.vid)

    def test_replay_reproduces_run_graph(self, running_spec):
        run = small_run(running_spec, 100, seed=4)
        exe = execution_from_derivation(run, random.Random(5))
        replayed = exe.replay()
        assert sorted(replayed.edges()) == sorted(run.graph.edges())

    def test_replay_rejects_forward_reference(self, running_spec):
        run = small_run(running_spec, 60, seed=6)
        exe = execution_from_derivation(run)
        exe.insertions.reverse()
        with pytest.raises(ExecutionError):
            exe.replay()

    def test_incomplete_derivation_rejected(self, running_spec):
        eng = DerivationEngine(running_spec)
        eng.begin()
        assert eng.derivation is not None
        with pytest.raises(ExecutionError):
            execution_from_derivation(eng.derivation)

    def test_origins_attached(self, running_spec):
        run = small_run(running_spec, 80, seed=7)
        exe = execution_from_derivation(run)
        for ins in exe:
            assert ins.origin is not None
            key, token, tv = ins.origin
            template = running_spec.graph(key)
            assert template.name(tv) == ins.name

    def test_origin_tokens_group_instances(self, running_spec):
        run = small_run(running_spec, 80, seed=8)
        exe = execution_from_derivation(run)
        by_token = {}
        for ins in exe:
            key, token, _ = ins.origin
            by_token.setdefault(token, set()).add(key)
        for keys in by_token.values():
            assert len(keys) == 1  # one graph per instance copy


class TestDeterministicOrder:
    def test_is_topological(self, running_spec):
        run = small_run(running_spec, 100, seed=9)
        order = deterministic_insertion_order(run.graph)
        pos = {v: i for i, v in enumerate(order)}
        for u, v in run.graph.edges():
            assert pos[u] < pos[v]

    def test_prefers_smaller_vertex_ids(self, running_spec):
        run = small_run(running_spec, 100, seed=10)
        order = deterministic_insertion_order(run.graph)
        # the first insertion is the run's source, which has the smallest id
        assert order[0] == min(run.graph.sources())

    def test_stable(self, running_spec):
        run = small_run(running_spec, 100, seed=11)
        a = deterministic_insertion_order(run.graph)
        b = deterministic_insertion_order(run.graph)
        assert a == b
