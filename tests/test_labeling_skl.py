"""Tests for the static SKL baseline and the global specification."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.datasets import bioaid, synthetic_spec
from repro.errors import UnsupportedWorkflowError
from repro.graphs.reachability import reaches
from repro.labeling.skl import SKL, GlobalSpecification
from repro.workflow.grammar import analyze_grammar

from tests.conftest import assert_labels_correct, small_run


@pytest.fixture(scope="module")
def norec_spec():
    return bioaid(recursive=False)


@pytest.fixture(scope="module")
def skl_tcl(norec_spec):
    return SKL(norec_spec, skeleton="tcl")


class TestGlobalSpecification:
    def test_rejects_recursive_spec(self, bioaid_spec):
        with pytest.raises(UnsupportedWorkflowError):
            GlobalSpecification(bioaid_spec)

    def test_expansion_contains_only_atomics(self, norec_spec):
        gs = GlobalSpecification(norec_spec)
        for v in gs.graph.vertices():
            assert norec_spec.is_atomic(gs.graph.name(v))

    def test_expansion_is_dag(self, norec_spec):
        gs = GlobalSpecification(norec_spec)
        gs.graph.validate()

    def test_size_matches_paper_magnitude(self, norec_spec):
        # paper: BioAID's global specification has ~106 vertices
        gs = GlobalSpecification(norec_spec)
        assert 60 <= len(gs) <= 160

    def test_vertex_for_unknown_occurrence(self, norec_spec):
        gs = GlobalSpecification(norec_spec)
        from repro.errors import LabelingError

        with pytest.raises(LabelingError):
            gs.vertex_for((("nope", "x"),), 0)


class TestSKLSetup:
    def test_rejects_recursive_workflows(self, bioaid_spec):
        with pytest.raises(UnsupportedWorkflowError):
            SKL(bioaid_spec)

    def test_unknown_skeleton_kind(self, norec_spec):
        from repro.errors import LabelingError

        with pytest.raises(LabelingError):
            SKL(norec_spec, skeleton="magic")

    def test_skeleton_bits_tcl_vs_bfs(self, norec_spec):
        tcl = SKL(norec_spec, skeleton="tcl")
        bfs = SKL(norec_spec, skeleton="bfs")
        n = len(tcl.global_spec)
        assert tcl.skeleton_bits() == n * (n - 1) // 2
        assert bfs.skeleton_bits() == 0


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bioaid_norec_sampled_pairs(self, norec_spec, skl_tcl, seed):
        run = small_run(norec_spec, 300, seed=seed)
        labels = skl_tcl.label_run(run)
        assert_labels_correct(
            run.graph, labels, skl_tcl.query, sample=5000, rng=random.Random(seed)
        )

    def test_bioaid_norec_all_pairs_small(self, norec_spec, skl_tcl):
        run = small_run(norec_spec, 120, seed=3)
        labels = skl_tcl.label_run(run)
        assert_labels_correct(run.graph, labels, skl_tcl.query)

    def test_bfs_skeleton_agrees_with_tcl(self, norec_spec, skl_tcl):
        run = small_run(norec_spec, 150, seed=4)
        skl_bfs = SKL(norec_spec, skeleton="bfs")
        labels_tcl = skl_tcl.label_run(run)
        labels_bfs = skl_bfs.label_run(run)
        vs = sorted(run.graph.vertices())
        for a, b in itertools.product(vs[:50], vs[:50]):
            assert skl_tcl.query(labels_tcl[a], labels_tcl[b]) == skl_bfs.query(
                labels_bfs[a], labels_bfs[b]
            )

    def test_non_recursive_synthetic(self):
        # a loop/fork-only synthetic family member (recursion escaped by
        # construction): take linear spec but only non-recursive parts --
        # use a plain loops+forks spec built from bioaid instead
        spec = bioaid(recursive=False)
        info = analyze_grammar(spec)
        assert not info.is_recursive

    def test_reflexive(self, norec_spec, skl_tcl):
        run = small_run(norec_spec, 80, seed=5)
        labels = skl_tcl.label_run(run)
        v = next(iter(labels))
        assert skl_tcl.query(labels[v], labels[v])


class TestLabelShape:
    def test_three_indexes_plus_pointer(self, norec_spec, skl_tcl):
        run = small_run(norec_spec, 200, seed=6)
        labels = skl_tcl.label_run(run)
        n = run.run_size()
        for label in labels.values():
            assert 0 <= label.t1 < n
            assert 0 <= label.t2 < n
            assert 0 <= label.t3 < n
            assert label.gs in skl_tcl.global_spec.graph

    def test_traversal_indexes_are_permutations(self, norec_spec, skl_tcl):
        run = small_run(norec_spec, 150, seed=7)
        labels = skl_tcl.label_run(run)
        n = len(labels)
        for field in ("t1", "t2", "t3"):
            values = sorted(getattr(l, field) for l in labels.values())
            assert values == list(range(n))

    def test_label_bits_have_slope_3(self, norec_spec, skl_tcl):
        """SKL's logarithmic label length has a factor ~3 (Section 7.4)."""
        small = small_run(norec_spec, 150, seed=8)
        large = small_run(norec_spec, 1200, seed=9)
        small_max = max(
            skl_tcl.label_bits(l) for l in skl_tcl.label_run(small).values()
        )
        large_max = max(
            skl_tcl.label_bits(l) for l in skl_tcl.label_run(large).values()
        )
        import math

        doublings = math.log2(large.run_size() / small.run_size())
        growth = large_max - small_max
        # slope must be near 3 bits per doubling (between 2 and 4.5)
        assert 1.5 * doublings <= growth <= 5 * doublings
