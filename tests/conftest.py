"""Shared fixtures and ground-truth helpers for the test suite."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.datasets import bioaid, running_example, synthetic_spec, theorem1_grammar
from repro.graphs.reachability import reaches
from repro.workflow.derivation import sample_run


@pytest.fixture(scope="session")
def running_spec():
    """The paper's running example (Figure 2)."""
    return running_example()


@pytest.fixture(scope="session")
def bioaid_spec():
    """The BioAID-like specification (recursive variant)."""
    return bioaid()


@pytest.fixture(scope="session")
def bioaid_norec_spec():
    """BioAID with the recursion converted to a loop (Section 7.4)."""
    return bioaid(recursive=False)


@pytest.fixture(scope="session")
def theorem1_spec():
    """The Figure 6 lower-bound grammar."""
    return theorem1_grammar()


@pytest.fixture(scope="session")
def synthetic_linear_spec():
    """A small member of the Figure 13 synthetic family."""
    return synthetic_spec(sub_size=10, depth=5, linear=True, seed=11)


@pytest.fixture()
def rng():
    """A deterministic RNG; reseeded per test."""
    return random.Random(0xC0FFEE)


def assert_reaches_matches_bfs(graph, reaches_fn, sample=None, rng=None):
    """Compare a vertex-level ``reaches(u, v)`` against BFS ground truth.

    The one shared ground-truth loop for every reachability scheme
    (per-scheme tests and the cross-scheme conformance suite both call
    it): all pairs when ``sample`` is None, sampled pairs otherwise.
    """
    vertices = sorted(graph.vertices())
    if sample is None:
        pairs = itertools.product(vertices, vertices)
    else:
        rng = rng or random.Random(1)
        pairs = (
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(sample)
        )
    for a, b in pairs:
        expected = reaches(graph, a, b)
        actual = reaches_fn(a, b)
        assert actual == expected, (
            f"reaches({a}:{graph.name(a)} -> {b}:{graph.name(b)}): "
            f"scheme says {actual}, graph says {expected}"
        )


def assert_labels_correct(graph, labels, query, sample=None, rng=None):
    """Compare a labeling against BFS ground truth on ``graph``.

    ``query(label_a, label_b)`` must equal ``a ;_graph b`` for all sampled
    pairs (all pairs when ``sample`` is None).
    """
    vertices = sorted(graph.vertices())
    if sample is None:
        pairs = itertools.product(vertices, vertices)
    else:
        rng = rng or random.Random(1)
        pairs = (
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(sample)
        )
    for a, b in pairs:
        expected = reaches(graph, a, b)
        actual = query(labels[a], labels[b])
        assert actual == expected, (
            f"query({a}:{graph.name(a)} -> {b}:{graph.name(b)}): "
            f"labels say {actual}, graph says {expected}"
        )


def small_run(spec, size, seed):
    """A seeded run of roughly ``size`` vertices for ``spec``."""
    return sample_run(spec, size, random.Random(seed))
