"""Small-scale integration re-runs of the Section 7 evaluation claims.

These complement ``benchmarks/``: they assert the evaluation's
*qualitative* claims inside the regular test suite, at a scale that runs
in seconds.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.datasets import bioaid, synthetic_spec
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.labeling.skl import SKL
from repro.workflow.execution import execution_from_derivation
from repro.workflow.grammar import analyze_grammar

from tests.conftest import small_run


def max_bits(scheme, run, labels):
    return max(scheme.label_bits(labels[v]) for v in run.graph.vertices())


class TestSection72BioAid:
    """Figure 14-16 claims on the BioAID-like workflow."""

    def test_label_length_logarithmic(self, bioaid_spec):
        scheme = DRL(bioaid_spec)
        sizes = (250, 1000, 4000)
        maxima = []
        for size in sizes:
            run = small_run(bioaid_spec, size, seed=size)
            labels = scheme.label_derivation(run)
            maxima.append(max_bits(scheme, run, labels))
        doublings = math.log2(sizes[-1] / sizes[0])
        assert maxima[-1] - maxima[0] <= 6 * doublings

    def test_average_below_maximum_by_constant(self, bioaid_spec):
        scheme = DRL(bioaid_spec)
        run = small_run(bioaid_spec, 1500, seed=7)
        labels = scheme.label_derivation(run)
        bits = [scheme.label_bits(labels[v]) for v in run.graph.vertices()]
        assert max(bits) - sum(bits) / len(bits) <= 20

    def test_spec_overhead_negligible(self, bioaid_spec):
        # Section 7.2: skeleton labels take negligible storage
        scheme = DRL(bioaid_spec, skeleton="tcl")
        run = small_run(bioaid_spec, 1500, seed=8)
        labels = scheme.label_derivation(run)
        run_label_bits = sum(
            scheme.label_bits(labels[v]) for v in run.graph.vertices()
        )
        assert scheme.skeleton.total_bits() < run_label_bits / 20


class TestSection73Synthetic:
    """Figure 17/18 claims on the synthetic family."""

    def test_depth_dominates_size(self):
        # the paper's conclusion: nesting depth is the main factor
        run_target = 1500
        shallow_small = synthetic_spec(10, 5, seed=1)
        shallow_big = synthetic_spec(80, 5, seed=1)
        deep_small = synthetic_spec(10, 15, seed=1)

        def measure(spec):
            scheme = DRL(spec)
            run = small_run(spec, run_target, seed=2)
            labels = scheme.label_derivation(run)
            return max_bits(scheme, run, labels)

        base = measure(shallow_small)
        size_effect = measure(shallow_big) - base
        depth_effect = measure(deep_small) - base
        assert depth_effect > 2 * max(size_effect, 1)


class TestSection74DrlVsSkl:
    """Figure 20-22 claims on the non-recursive BioAID variant."""

    @pytest.fixture(scope="class")
    def setting(self, bioaid_norec_spec):
        drl = DRL(bioaid_norec_spec)
        skl = SKL(bioaid_norec_spec, skeleton="tcl")
        return bioaid_norec_spec, drl, skl

    def test_skl_slope_exceeds_drl_slope(self, setting):
        spec, drl, skl = setting
        small, large = 400, 3200
        run_small = small_run(spec, small, seed=20)
        run_large = small_run(spec, large, seed=21)
        drl_growth = max_bits(
            drl, run_large, drl.label_derivation(run_large)
        ) - max_bits(drl, run_small, drl.label_derivation(run_small))
        skl_small = skl.label_run(run_small)
        skl_large = skl.label_run(run_large)
        skl_growth = max(skl.label_bits(l) for l in skl_large.values()) - max(
            skl.label_bits(l) for l in skl_small.values()
        )
        assert skl_growth > drl_growth

    def test_both_schemes_agree_on_answers(self, setting):
        from repro.graphs.reachability import reaches

        spec, drl, skl = setting
        run = small_run(spec, 600, seed=22)
        drl_labels = drl.label_derivation(run)
        skl_labels = skl.label_run(run)
        vs = sorted(run.graph.vertices())
        rng = random.Random(23)
        for _ in range(3000):
            a, b = rng.choice(vs), rng.choice(vs)
            expected = reaches(run.graph, a, b)
            assert drl.query(drl_labels[a], drl_labels[b]) == expected
            assert skl.query(skl_labels[a], skl_labels[b]) == expected

    def test_drl_labels_available_before_completion(self, setting):
        """The qualitative advantage the paper leads with: SKL needs the
        whole run, DRL labels a prefix."""
        spec, drl, _ = setting
        run = small_run(spec, 400, seed=24)
        exe = execution_from_derivation(run)
        labeler = DRLExecutionLabeler(drl, mode="name")
        half = len(exe.insertions) // 2
        for ins in exe.insertions[:half]:
            labeler.insert(ins)
        # half the run is labeled and queryable right now
        assert len(labeler.labels) == half
        a = exe.insertions[0].vid
        b = exe.insertions[half - 1].vid
        assert isinstance(drl.query(labeler.label(a), labeler.label(b)), bool)


class TestNormalizationPreservesLanguage:
    def test_bounded_run_counts_match(self, theorem1_spec):
        from repro.workflow.enumerate_runs import count_runs
        from repro.workflow.normalize import normalize_specification

        normalized, _ = normalize_specification(theorem1_spec)
        original_count = count_runs(theorem1_spec, max_size=30, max_copies=1)
        normalized_count = count_runs(normalized, max_size=30, max_copies=1)
        assert original_count == normalized_count
