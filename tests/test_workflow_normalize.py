"""Tests for Section 5.3 specification normalization."""

from __future__ import annotations

import random

import pytest

from repro.datasets import (
    bioaid,
    running_example,
    synthetic_spec,
    theorem1_grammar,
)
from repro.graphs.reachability import reaches
from repro.graphs.two_terminal import TwoTerminalGraph
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation
from repro.workflow.grammar import analyze_grammar
from repro.workflow.normalize import NameMap, normalize_specification
from repro.workflow.specification import make_spec
from repro.workflow.validation import (
    check_naming_conditions,
    naming_condition_violations,
)


def chain(names):
    return TwoTerminalGraph.build(
        list(enumerate(names)), [(i, i + 1) for i in range(len(names) - 1)]
    )


class TestIdentityCases:
    def test_satisfying_spec_returned_unchanged(self, running_spec):
        norm, name_map = normalize_specification(running_spec)
        assert norm is running_spec
        assert name_map.to_original == {}

    def test_bioaid_unchanged(self):
        spec = bioaid()
        norm, _ = normalize_specification(spec)
        assert norm is spec


class TestConditionRepair:
    def test_theorem1_grammar_normalizes(self, theorem1_spec):
        norm, name_map = normalize_specification(theorem1_spec)
        assert naming_condition_violations(norm) == []
        check_naming_conditions(norm)
        # the duplicated composite A became an alias with the same bodies
        assert "A~2" in norm.composite_names
        assert name_map.original("A~2") == "A"
        assert len(norm.impl_keys("A~2")) == len(theorem1_spec.impl_keys("A"))

    def test_nonlinear_synthetic_normalizes(self):
        spec = synthetic_spec(8, 5, linear=False)
        norm, _ = normalize_specification(spec)
        check_naming_conditions(norm)

    def test_duplicate_atomic_names_renamed(self):
        g0 = chain(["s", "X", "t"])
        hx = TwoTerminalGraph.build(
            [(0, "sx"), (1, "work"), (2, "work"), (3, "tx")],
            [(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        spec = make_spec(g0, [("X", hx)], name="dup-atomic")
        norm, name_map = normalize_specification(spec)
        check_naming_conditions(norm)
        body = norm.graph(norm.impl_keys("X")[0])
        names = sorted(body.names())
        assert "work" in names and "work~2" in names
        assert name_map.original("work~2") == "work"

    def test_shared_terminal_names_get_dummies(self):
        g0 = chain(["s", "X", "t"])
        hx = chain(["s", "tx"])  # source name collides with g0's
        spec = make_spec(g0, [("X", hx)], name="dup-terminal")
        norm, _ = normalize_specification(spec)
        check_naming_conditions(norm)
        # one of the graphs was wrapped with a dummy module
        sizes = [len(norm.graph(k)) for k in norm.graph_keys()]
        assert sum(sizes) > sum(len(spec.graph(k)) for k in spec.graph_keys())

    def test_grammar_class_preserved(self, theorem1_spec):
        norm, _ = normalize_specification(theorem1_spec)
        before = analyze_grammar(theorem1_spec)
        after = analyze_grammar(norm)
        assert before.grammar_class is after.grammar_class
        assert before.parallel_recursive == after.parallel_recursive


class TestNormalizedExecution:
    """The point of normalizing: name-based inference becomes possible."""

    @pytest.mark.parametrize(
        "spec_factory",
        [theorem1_grammar, lambda: synthetic_spec(8, 5, linear=False)],
    )
    def test_name_mode_execution_on_normalized_spec(self, spec_factory):
        spec = spec_factory()
        norm, _ = normalize_specification(spec)
        scheme = DRL(norm, r_mode="one_r")
        run = sample_run(norm, 180, random.Random(4))
        exe = execution_from_derivation(run, random.Random(5))
        labels = DRLExecutionLabeler(scheme, mode="name").run(exe)
        g = run.graph
        vs = sorted(g.vertices())
        rng = random.Random(6)
        for _ in range(3000):
            a, b = rng.choice(vs), rng.choice(vs)
            assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)

    def test_runs_report_original_names(self, theorem1_spec):
        norm, name_map = normalize_specification(theorem1_spec)
        run = sample_run(norm, 120, random.Random(7))
        originals = {name_map.original(run.graph.name(v)) for v in run.graph.vertices()}
        # every normalized vertex name maps back to the original alphabet
        assert originals <= set(theorem1_spec.names) | {"src", "snk"} | {
            n.split("~")[0] for n in originals
        }
        for v in run.graph.vertices():
            name = name_map.original(run.graph.name(v))
            assert "~" not in name


class TestNameMap:
    def test_identity_for_untouched_names(self):
        name_map = NameMap()
        assert name_map.original("anything") == "anything"

    def test_record_and_lookup(self):
        name_map = NameMap()
        name_map.record("A~2", "A")
        assert name_map.original("A~2") == "A"
