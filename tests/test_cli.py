"""Tests for the command-line interface (invoked in-process)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestInfo:
    def test_builtin_spec(self, capsys):
        code, out = run_cli(capsys, "info", "running-example")
        assert code == 0
        assert "linear-recursive" in out
        assert "naming conditions: satisfied" in out

    def test_spec_from_file(self, capsys, tmp_path, running_spec):
        from repro.io import save_specification_json

        path = tmp_path / "spec.json"
        save_specification_json(running_spec, path)
        code, out = run_cli(capsys, "info", str(path))
        assert code == 0
        assert "running-example" in out

    def test_unknown_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["info", "no-such-spec"])


class TestPipeline:
    def test_derive_label_query_round_trip(self, capsys, tmp_path):
        exec_path = tmp_path / "run.json"
        labels_path = tmp_path / "labels.json"

        code, out = run_cli(
            capsys, "derive", "running-example", "-o", str(exec_path),
            "--size", "300", "--seed", "5",
        )
        assert code == 0
        assert "derived run" in out

        code, out = run_cli(
            capsys, "label", "running-example", str(exec_path),
            "-o", str(labels_path), "--mode", "logged",
        )
        assert code == 0
        assert "labeled" in out

        events = json.loads(exec_path.read_text())["insertions"]
        first, last = events[0]["vid"], events[-1]["vid"]
        code, out = run_cli(
            capsys, "query", "running-example", str(labels_path),
            str(first), str(last),
        )
        assert code == 0  # reachable -> exit 0
        assert "True" in out
        code, out = run_cli(
            capsys, "query", "running-example", str(labels_path),
            str(last), str(first),
        )
        assert code == 1  # unreachable -> exit 1
        assert "False" in out

    def test_label_name_mode(self, capsys, tmp_path):
        exec_path = tmp_path / "run.xml"
        labels_path = tmp_path / "labels.json"
        run_cli(
            capsys, "derive", "bioaid", "-o", str(exec_path),
            "--size", "200", "--seed", "1",
        )
        code, out = run_cli(
            capsys, "label", "bioaid", str(exec_path),
            "-o", str(labels_path), "--mode", "name",
        )
        assert code == 0

    def test_query_unknown_vertex(self, capsys, tmp_path):
        exec_path = tmp_path / "run.json"
        labels_path = tmp_path / "labels.json"
        run_cli(capsys, "derive", "running-example", "-o", str(exec_path),
                "--size", "100", "--seed", "2")
        run_cli(capsys, "label", "running-example", str(exec_path),
                "-o", str(labels_path))
        with pytest.raises(SystemExit):
            main([
                "query", "running-example", str(labels_path),
                "999999", "0",
            ])


class TestNormalize:
    def test_normalize_writes_spec(self, capsys, tmp_path, theorem1_spec):
        from repro.io import load_specification_json, save_specification_json
        from repro.workflow.validation import naming_condition_violations

        spec_path = tmp_path / "thm1.json"
        save_specification_json(theorem1_spec, spec_path)
        out_path = tmp_path / "normalized.json"
        code, out = run_cli(
            capsys, "normalize", str(spec_path), "-o", str(out_path)
        )
        assert code == 0
        assert "names rewritten" in out
        normalized = load_specification_json(out_path)
        assert naming_condition_violations(normalized) == []


class TestBench:
    def test_bench_single_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        monkeypatch.setenv("REPRO_SAMPLES", "1")
        monkeypatch.setenv("REPRO_QUERIES", "500")
        code, out = run_cli(capsys, "bench", "tab2")
        assert code == 0
        assert "tab2" in out
