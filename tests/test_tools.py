"""Tests for repository tooling (API doc generator)."""

from __future__ import annotations

import importlib.util
import pathlib


def load_generator():
    path = pathlib.Path(__file__).parent.parent / "tools" / "gen_api_docs.py"
    module_spec = importlib.util.spec_from_file_location("gen_api_docs", path)
    module = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(module)
    return module


class TestApiDocGenerator:
    def test_render_covers_core_modules(self):
        gen = load_generator()
        text = gen.render()
        for anchor in (
            "## `repro.labeling.drl`",
            "## `repro.workflow.derivation`",
            "## `repro.parsetree.explicit`",
            "### class `DRL`",
            "### class `ExplicitParseTree`",
        ):
            assert anchor in text

    def test_render_uses_docstring_first_lines(self):
        gen = load_generator()
        text = gen.render()
        assert "Algorithm 4" in text  # DRL.query's docstring

    def test_committed_docs_exist(self):
        docs = pathlib.Path(__file__).parent.parent / "docs" / "API.md"
        assert docs.exists()
        assert docs.stat().st_size > 10_000
