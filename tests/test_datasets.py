"""Tests for the bundled specifications."""

from __future__ import annotations

import pytest

from repro.datasets import (
    bioaid,
    fig12_path_grammar,
    running_example,
    synthetic_spec,
    theorem1_grammar,
)
from repro.errors import SpecificationError
from repro.workflow.grammar import GrammarClass, analyze_grammar
from repro.workflow.validation import validate_specification

from tests.conftest import small_run


class TestRunningExample:
    def test_structure_matches_figure_2(self, running_spec):
        assert running_spec.composite_names == {"L", "F", "A", "B", "C"}
        assert running_spec.loops == frozenset({"L"})
        assert running_spec.forks == frozenset({"F"})
        assert len(running_spec.impl_keys("A")) == 2

    def test_runs_derivable(self, running_spec):
        run = small_run(running_spec, 100, seed=1)
        assert run.run_size() > 10


class TestBioaid:
    def test_statistics_match_paper(self, bioaid_spec):
        """Section 7.2: 11 sub-workflows, avg size ~10.5, 2 loops, 4 forks,
        one linear recursion of length 2."""
        stats = bioaid_spec.stats()
        assert stats["graphs"] == 12  # g0 + 11 sub-workflows
        assert stats["loops"] == 2
        assert stats["forks"] == 4
        assert 8.0 <= bioaid_spec.average_graph_size <= 12.0

    def test_recursion_length_two(self, bioaid_spec):
        info = analyze_grammar(bioaid_spec)
        closure = info.induces
        assert "RefineQuery" in closure["ExpandHits"]
        assert "ExpandHits" in closure["RefineQuery"]
        assert info.grammar_class is GrammarClass.LINEAR_RECURSIVE

    def test_norec_variant_is_loop_converted(self, bioaid_norec_spec):
        info = analyze_grammar(bioaid_norec_spec)
        assert info.grammar_class is GrammarClass.NON_RECURSIVE
        assert bioaid_norec_spec.is_loop("RefineQuery")

    def test_both_variants_validate(self):
        validate_specification(bioaid())
        validate_specification(bioaid(recursive=False))

    def test_runs_scale(self, bioaid_spec):
        run = small_run(bioaid_spec, 1000, seed=2)
        assert run.run_size() >= 500


class TestTheorem1Grammar:
    def test_differential_vertex_reaches_one_recursive_vertex(
        self, theorem1_spec
    ):
        from repro.graphs.reachability import reaches

        h1 = theorem1_spec.graph("A#0")
        a_vertices = [v for v in h1.vertices() if h1.name(v) == "a"]
        rec_vertices = [v for v in h1.vertices() if h1.name(v) == "A"]
        assert len(a_vertices) == 1
        assert len(rec_vertices) == 2
        reached = [
            v for v in rec_vertices if reaches(h1.dag, a_vertices[0], v)
        ]
        assert len(reached) == 1  # "exactly one of the two A's"

    def test_parallel_recursive(self, theorem1_spec):
        info = analyze_grammar(theorem1_spec)
        assert info.parallel_recursive


class TestFig12Grammar:
    def test_runs_are_simple_paths(self):
        spec = fig12_path_grammar()
        run = small_run(spec, 100, seed=3)
        g = run.graph
        for v in g.vertices():
            assert g.out_degree(v) <= 1
            assert g.in_degree(v) <= 1

    def test_series_recursive_not_parallel(self):
        info = analyze_grammar(fig12_path_grammar())
        assert info.grammar_class is GrammarClass.NONLINEAR_RECURSIVE
        assert not info.parallel_recursive


class TestSyntheticFamily:
    @pytest.mark.parametrize("sub_size", [10, 20, 40])
    def test_sub_workflow_sizes(self, sub_size):
        spec = synthetic_spec(sub_size=sub_size, depth=5)
        for key in spec.graph_keys():
            assert len(spec.graph(key)) == sub_size

    @pytest.mark.parametrize("depth", [4, 5, 8])
    def test_depth_controls_graph_count(self, depth):
        spec = synthetic_spec(sub_size=10, depth=depth)
        # g0 + (depth-4 plain) + loop body + fork body + 2 REC bodies
        assert len(list(spec.graph_keys())) == depth + 1

    def test_linear_flag(self):
        linear = analyze_grammar(synthetic_spec(10, 5, linear=True))
        nonlinear = analyze_grammar(synthetic_spec(10, 5, linear=False))
        assert linear.grammar_class is GrammarClass.LINEAR_RECURSIVE
        assert nonlinear.grammar_class is GrammarClass.NONLINEAR_RECURSIVE

    def test_depth_minimum_enforced(self):
        with pytest.raises(SpecificationError):
            synthetic_spec(sub_size=10, depth=3)

    def test_size_minimum_enforced(self):
        with pytest.raises(SpecificationError):
            synthetic_spec(sub_size=3, depth=5, linear=False)

    def test_deterministic_given_seed(self):
        a = synthetic_spec(10, 5, seed=42)
        b = synthetic_spec(10, 5, seed=42)
        for key in a.graph_keys():
            assert sorted(a.graph(key).edges()) == sorted(b.graph(key).edges())

    def test_runs_derivable(self):
        spec = synthetic_spec(10, 6)
        run = small_run(spec, 300, seed=4)
        assert run.run_size() > 100
