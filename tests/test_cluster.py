"""Tests for the process-per-shard cluster (repro.service.cluster).

The routing invariants the cluster stands on:

* the session -> worker hash is **stable** across processes and
  restarts (CRC-32, not the salted builtin), so a durable worker
  always remounts the directories it wrote;
* broadcast merges are **correct**: merged stats counters equal the
  sum over workers, and merged metrics histograms are *exactly* the
  sum of the per-worker raw snapshots (not averaged percentiles);
* a request naming sessions owned by different workers is rejected
  with a structured ``protocol`` error, never silently mis-routed.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time

import pytest

from repro.errors import ProtocolError, ServiceError
from repro.graphs.reachability import reaches
from repro.obs.histogram import HistogramSnapshot
from repro.obs.metrics import MetricsRegistry
from repro.service import ClusterSupervisor, ServiceClient, session_worker
from repro.service.client import IDEMPOTENT_OPS, RECONNECT_BACKOFF
from repro.service.cluster import merge_metrics, merge_stats
from repro.service.protocol import (
    Request,
    decode_request,
    encode_response,
    error_response,
)
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation

# under workers=2: crc32("alpha") % 2 == 0, crc32("beta") % 2 == 1
ALPHA, BETA = "alpha", "beta"


def make_execution(spec, size=120, seed=0):
    run = sample_run(spec, size, random.Random(seed))
    return run, execution_from_derivation(run)


def start_cluster(**kwargs):
    supervisor = ClusterSupervisor(port=0, **kwargs).start()
    thread = threading.Thread(target=supervisor.serve_forever,
                              daemon=True)
    thread.start()
    return supervisor, thread


def stop_cluster(supervisor, thread):
    supervisor.stop()
    thread.join(timeout=20)
    assert not thread.is_alive(), "router thread failed to exit"


@pytest.fixture(scope="module")
def cluster():
    supervisor, thread = start_cluster(workers=2, shards=2)
    yield supervisor
    stop_cluster(supervisor, thread)


@pytest.fixture()
def client(cluster):
    with ServiceClient("127.0.0.1", cluster.port) as c:
        yield c


def _raw_lines(port, lines):
    """Send raw protocol lines through the router; return the decoded
    replies (the connection must survive every line)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        reader = sock.makefile("r", encoding="utf-8")
        writer = sock.makefile("w", encoding="utf-8")
        replies = []
        for line in lines:
            writer.write(line + "\n")
            writer.flush()
            reply = reader.readline()
            assert reply, f"router dropped the connection after {line!r}"
            replies.append(json.loads(reply))
        return replies


# ---------------------------------------------------------------------------
# the hash
# ---------------------------------------------------------------------------


class TestSessionWorker:
    def test_stable_known_values(self):
        # frozen CRC-32 assignments: a change here would re-shard every
        # existing durable data dir
        assert session_worker("alpha", 2) == 0
        assert session_worker("beta", 2) == 1
        assert session_worker("alpha", 2) == session_worker("alpha", 2)

    def test_range_and_distribution(self):
        owners = {session_worker(f"s{i}", 4) for i in range(64)}
        assert owners <= set(range(4))
        assert len(owners) == 4  # 64 names must not pile on one worker

    def test_single_worker_owns_everything(self):
        assert all(session_worker(f"s{i}", 1) == 0 for i in range(16))

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            session_worker("a", 0)


# ---------------------------------------------------------------------------
# routing through a live cluster
# ---------------------------------------------------------------------------


class TestClusterRouting:
    def test_topology(self, cluster, client):
        info = client.cluster_info()
        assert info["cluster"] is True
        assert info["workers"] == 2
        assert len(info["per_worker"]) == 2
        assert all(row["alive"] for row in info["per_worker"])
        pids = {row["pid"] for row in info["per_worker"]}
        assert len(pids) == 2  # genuinely separate processes

    def test_sessions_split_and_answer_correctly(
        self, cluster, client, running_spec
    ):
        run, execution = make_execution(running_spec, seed=3)
        client.create_session(ALPHA, "running-example")
        client.create_session(BETA, "running-example")
        client.ingest(ALPHA, execution.insertions)
        client.ingest(BETA, execution.insertions)

        vids = sorted(run.graph.vertices())
        rng = random.Random(11)
        pairs = [(rng.choice(vids), rng.choice(vids)) for _ in range(80)]
        expected = [reaches(run.graph, a, b) for a, b in pairs]
        assert client.query_batch(ALPHA, pairs) == expected
        assert client.query_batch(BETA, pairs) == expected

        assert client.list_sessions() == [ALPHA, BETA]
        # each worker hosts exactly its own session
        per_worker = client.stats()["per_worker"]
        assert per_worker[session_worker(ALPHA, 2)]["sessions"] == 1
        assert per_worker[session_worker(BETA, 2)]["sessions"] == 1

        client.close_session(ALPHA)
        client.close_session(BETA)

    def test_stats_totals_are_sums_of_workers(
        self, cluster, client, running_spec
    ):
        run, execution = make_execution(running_spec, seed=5)
        vids = sorted(run.graph.vertices())
        client.create_session(ALPHA, "running-example")
        client.create_session(BETA, "running-example")
        client.ingest(ALPHA, execution.insertions)
        client.ingest(BETA, execution.insertions)
        client.query_batch(ALPHA, [(vids[0], vids[1])] * 10)
        client.query_batch(BETA, [(vids[0], vids[1])] * 7)

        stats = client.stats()
        assert stats["workers"] == 2
        rows = stats["per_worker"]
        assert len(rows) == 2
        for field in ("sessions", "queries", "cache_hits",
                      "cache_misses", "ingested"):
            assert stats[field] == sum(row[field] for row in rows), field
        hits, misses = stats["cache_hits"], stats["cache_misses"]
        if hits + misses:
            assert stats["hit_rate"] == pytest.approx(
                hits / (hits + misses))

        client.close_session(ALPHA)
        client.close_session(BETA)

    def test_metrics_merge_is_exact_over_live_workers(
        self, cluster, client, running_spec
    ):
        run, execution = make_execution(running_spec, seed=7)
        vids = sorted(run.graph.vertices())
        client.create_session(ALPHA, "running-example")
        client.create_session(BETA, "running-example")
        client.ingest(ALPHA, execution.insertions)
        client.ingest(BETA, execution.insertions)
        client.query_batch(ALPHA, [(vids[0], vids[1])] * 5)
        client.query_batch(BETA, [(vids[0], vids[1])] * 5)

        merged = client.metrics()
        assert merged["workers"] == 2
        # every histogram's summary must be self-consistent with a
        # genuine merged state (count == sum of bucket counts), which
        # averaging per-worker percentiles could never guarantee
        raw = _raw_lines(cluster.port, [
            json.dumps({"op": "metrics", "raw": True})
        ])[0]
        assert raw["ok"], raw
        for entry in raw["result"]["histograms"]:
            snapshot = HistogramSnapshot.from_raw(entry)
            assert snapshot.count == sum(entry["counts"])
        merged_counts = {
            (e["name"], tuple(sorted(e["labels"].items()))): e["count"]
            for e in merged["histograms"]
        }
        raw_counts = {
            (e["name"], tuple(sorted(e["labels"].items()))): e["count"]
            for e in raw["result"]["histograms"]
        }
        # raw and summarized views describe the same merged state
        for key, count in merged_counts.items():
            assert raw_counts[key] >= count

        client.close_session(ALPHA)
        client.close_session(BETA)

    def test_cross_worker_batch_rejected(self, cluster, client):
        # alpha lives on worker 0, beta on worker 1: a batch naming
        # both has no single owner and must be refused, structurally
        reply = _raw_lines(cluster.port, [json.dumps({
            "op": "query_batch",
            "session": [ALPHA, BETA], "pairs": [[0, 0]],
        })])[0]
        assert reply["ok"] is False
        assert reply["code"] == "protocol"
        assert "different workers" in reply["error"]

    def test_session_list_with_single_owner_still_rejected(
        self, cluster
    ):
        reply = _raw_lines(cluster.port, [json.dumps({
            "op": "query_batch",
            "session": [ALPHA], "pairs": [[0, 0]],
        })])[0]
        assert reply["ok"] is False
        assert reply["code"] == "protocol"
        assert "single session name" in reply["error"]

    def test_errors_route_back_structured(self, cluster, client):
        with pytest.raises(ServiceError):
            client.ingest("never-created", [])

    def test_schemes_and_ping_broadcast(self, cluster, client):
        schemes = client.list_schemes()
        assert any(s["name"] == "drl" for s in schemes)
        assert client.ping() is True


# ---------------------------------------------------------------------------
# merge functions (unit)
# ---------------------------------------------------------------------------


class TestMergeStats:
    def test_sums_and_recomputed_hit_rate(self):
        merged = merge_stats([
            {"sessions": 2, "queries": 10, "cache_hits": 8,
             "cache_misses": 2, "ingested": 100, "hit_rate": 0.8},
            {"sessions": 1, "queries": 30, "cache_hits": 2,
             "cache_misses": 8, "ingested": 50, "hit_rate": 0.2},
        ])
        assert merged["sessions"] == 3
        assert merged["queries"] == 40
        assert merged["ingested"] == 150
        # 10/20, NOT mean(0.8, 0.2) -- a mean of ratios would be wrong
        assert merged["hit_rate"] == pytest.approx(0.5)
        assert merged["workers"] == 2
        assert merged["per_worker"][0]["worker"] == 0
        assert merged["per_worker"][1]["queries"] == 30

    def test_zero_traffic(self):
        merged = merge_stats([
            {"cache_hits": 0, "cache_misses": 0, "hit_rate": 0.0},
            {"cache_hits": 0, "cache_misses": 0, "hit_rate": 0.0},
        ])
        assert merged["hit_rate"] == 0.0

    def test_empty(self):
        assert merge_stats([]) == {"workers": 0, "per_worker": []}


class TestMergeMetrics:
    def _registry(self, samples, counter=0):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_query_seconds", op="query")
        for s in samples:
            hist.record(s)
        if counter:
            registry.counter("repro_requests_total",
                             op="query").inc(counter)
        return registry

    def test_histograms_merge_exactly(self):
        a_samples = [0.001, 0.002, 0.5, 1.5]
        b_samples = [0.003, 0.004, 2.5]
        a = self._registry(a_samples, counter=4)
        b = self._registry(b_samples, counter=3)
        both = self._registry(a_samples + b_samples, counter=7)

        merged = merge_metrics(
            [a.snapshot(raw=True), b.snapshot(raw=True)], raw=True)
        reference = both.snapshot(raw=True)

        assert merged["workers"] == 2
        (mh,) = merged["histograms"]
        (rh,) = reference["histograms"]
        # exact: the merged bucket vector IS the elementwise sum, so
        # count/sum/min/max all coincide with single-registry truth
        assert mh["counts"] == rh["counts"]
        assert mh["count"] == rh["count"] == 7
        assert mh["sum_ns"] == rh["sum_ns"]
        assert mh["min_ns"] == rh["min_ns"]
        assert mh["max_ns"] == rh["max_ns"]
        (mc,) = merged["counters"]
        assert mc["value"] == 7

    def test_summarized_view_matches_combined_registry(self):
        a = self._registry([0.01] * 10 + [0.9])
        b = self._registry([0.02] * 10 + [1.8])
        both = self._registry([0.01] * 10 + [0.9]
                              + [0.02] * 10 + [1.8])
        merged = merge_metrics(
            [a.snapshot(raw=True), b.snapshot(raw=True)])
        (mh,) = merged["histograms"]
        (rh,) = both.snapshot()["histograms"]
        for field in ("count", "p50", "p95", "p99"):
            assert mh[field] == rh[field], field

    def test_counters_keyed_by_labels(self):
        a = MetricsRegistry()
        a.counter("c", op="x").inc(1)
        b = MetricsRegistry()
        b.counter("c", op="x").inc(2)
        b.counter("c", op="y").inc(5)
        merged = merge_metrics([a.snapshot(raw=True),
                                b.snapshot(raw=True)])
        values = {
            tuple(sorted(e["labels"].items())): e["value"]
            for e in merged["counters"]
        }
        assert values[(("op", "x"),)] == 3
        assert values[(("op", "y"),)] == 5

    def test_trace_counts_sum(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        sa = a.snapshot(raw=True)
        sb = b.snapshot(raw=True)
        sa["traces"] = {"spans": 3, "slow": 1, "slow_threshold_s": 0.5}
        sb["traces"] = {"spans": 5, "slow": 0, "slow_threshold_s": 0.5}
        merged = merge_metrics([sa, sb])
        assert merged["traces"]["spans"] == 8
        assert merged["traces"]["slow"] == 1
        assert merged["traces"]["slow_threshold_s"] == 0.5


# ---------------------------------------------------------------------------
# durability: the hash keeps worker directories valid across restarts
# ---------------------------------------------------------------------------


class TestDurableCluster:
    def test_restart_recovers_into_the_same_worker(
        self, tmp_path, running_spec
    ):
        data_dir = str(tmp_path / "cluster")
        run, execution = make_execution(running_spec, size=80, seed=9)
        vids = sorted(run.graph.vertices())
        pairs = [(vids[0], v) for v in vids[:20]]
        expected = [reaches(run.graph, a, b) for a, b in pairs]
        owner = session_worker(ALPHA, 2)

        supervisor, thread = start_cluster(
            workers=2, shards=2, data_dir=data_dir, fsync="always")
        try:
            with ServiceClient("127.0.0.1", supervisor.port) as c:
                c.create_session(ALPHA, "running-example")
                c.ingest(ALPHA, execution.insertions)
                assert c.query_batch(ALPHA, pairs) == expected
        finally:
            stop_cluster(supervisor, thread)

        # the session's bytes live under its owner's directory, nowhere
        # else -- that is what hash stability buys
        owner_dir = tmp_path / "cluster" / f"worker-{owner}"
        other_dir = tmp_path / "cluster" / f"worker-{1 - owner}"
        assert (owner_dir / f"s-{ALPHA}").is_dir()
        assert not (other_dir / f"s-{ALPHA}").exists()

        supervisor, thread = start_cluster(
            workers=2, shards=2, data_dir=data_dir, fsync="always")
        try:
            with ServiceClient("127.0.0.1", supervisor.port) as c:
                info = c.recover_info()
                assert info["cluster"] is True
                recovered = info["per_worker"][owner]["recovered"]
                assert ALPHA in [r["session"] for r in recovered]
                assert c.query_batch(ALPHA, pairs) == expected
        finally:
            stop_cluster(supervisor, thread)

    def test_recover_info_carries_torn_tails_per_worker(
        self, tmp_path, running_spec
    ):
        data_dir = str(tmp_path / "cluster")
        _, execution = make_execution(running_spec, size=60, seed=21)
        owner = session_worker(ALPHA, 2)

        supervisor, thread = start_cluster(
            workers=2, shards=2, data_dir=data_dir, fsync="always")
        try:
            with ServiceClient("127.0.0.1", supervisor.port) as c:
                c.create_session(ALPHA, "running-example")
                c.ingest(ALPHA, execution.insertions[:20])
                c.ingest(ALPHA, execution.insertions[20:40])
        finally:
            stop_cluster(supervisor, thread)

        # tear the owning worker's WAL tail mid-record
        wal_path = (tmp_path / "cluster" / f"worker-{owner}"
                    / f"s-{ALPHA}" / "wal.jsonl")
        wal_path.write_bytes(wal_path.read_bytes()[:-9])

        supervisor, thread = start_cluster(
            workers=2, shards=2, data_dir=data_dir, fsync="always")
        try:
            with ServiceClient("127.0.0.1", supervisor.port) as c:
                info = c.recover_info()
                assert info["torn_bytes_dropped"] > 0
                (tail,) = info["torn_tails"]
                assert tail["worker"] == owner
                assert tail["session"] == ALPHA
                assert tail["torn_bytes_dropped"] > 0
                assert tail["torn_last_good_seq"] == 0
        finally:
            stop_cluster(supervisor, thread)

    def test_manifest_rejects_changed_worker_count(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        supervisor, thread = start_cluster(workers=2, data_dir=data_dir)
        stop_cluster(supervisor, thread)
        with pytest.raises(ServiceError, match="laid out for 2"):
            ClusterSupervisor(workers=3, data_dir=data_dir).start()

    def test_manifest_written_on_first_boot(self, tmp_path):
        data_dir = tmp_path / "cluster"
        supervisor, thread = start_cluster(workers=2,
                                           data_dir=str(data_dir))
        stop_cluster(supervisor, thread)
        with open(data_dir / "cluster.json", encoding="utf-8") as fh:
            assert json.load(fh) == {"workers": 2}


# ---------------------------------------------------------------------------
# supervisor misuse
# ---------------------------------------------------------------------------


class TestSupervisorLifecycle:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            ClusterSupervisor(workers=0)

    def test_port_before_start_rejected(self):
        with pytest.raises(ServiceError):
            ClusterSupervisor(workers=1).port

    def test_serve_before_start_rejected(self):
        with pytest.raises(ServiceError):
            ClusterSupervisor(workers=1).serve_forever()


# ---------------------------------------------------------------------------
# client failover (satellite: timeouts + one reconnect for idempotent)
# ---------------------------------------------------------------------------


class _FlakyServer(threading.Thread):
    """Accepts connections; drops the first N requests mid-flight
    (close without replying), then answers properly forever."""

    def __init__(self, drop_first: int):
        super().__init__(daemon=True)
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]
        self.drop_remaining = drop_first
        self.requests_seen = 0
        self._halt = threading.Event()

    def run(self):
        self.listener.settimeout(0.2)
        while not self._halt.is_set():
            try:
                sock, _ = self.listener.accept()
            except socket.timeout:
                continue
            reader = sock.makefile("r", encoding="utf-8")
            try:
                while not self._halt.is_set():
                    line = reader.readline()
                    if not line.strip():
                        break
                    self.requests_seen += 1
                    if self.drop_remaining > 0:
                        self.drop_remaining -= 1
                        break  # close mid-request: simulated crash
                    request = decode_request(line)
                    if request.op == "ping":
                        payload = {"ok": True, "result": {"pong": True},
                                   "id": request.id}
                    else:
                        payload = json.loads(encode_response(
                            error_response(
                                ServiceError("mutations must not retry"),
                                request.id)))
                    sock.sendall(
                        (json.dumps(payload) + "\n").encode("utf-8"))
            finally:
                # shutdown, not just close: the reader still holds the
                # fd, and the client must see FIN *now*, not on gc
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                reader.close()
                sock.close()

    def stop(self):
        self._halt.set()
        self.join(timeout=5)
        self.listener.close()


class TestClientFailover:
    def test_idempotent_op_survives_one_drop(self):
        server = _FlakyServer(drop_first=1)
        server.start()
        try:
            with ServiceClient("127.0.0.1", server.port,
                               timeout=5.0) as client:
                assert client.ping() is True  # retried transparently
            assert server.requests_seen == 2
        finally:
            server.stop()

    def test_consecutive_drops_retried_under_backoff(self):
        server = _FlakyServer(drop_first=2)
        server.start()
        try:
            with ServiceClient("127.0.0.1", server.port,
                               timeout=5.0) as client:
                assert client.ping() is True
            assert server.requests_seen == 3
        finally:
            server.stop()

    def test_drops_outlasting_the_deadline_surface(self):
        server = _FlakyServer(drop_first=10_000)  # never answers
        server.start()
        try:
            with ServiceClient("127.0.0.1", server.port, timeout=5.0,
                               retry_deadline=0.4) as client:
                started = time.monotonic()
                with pytest.raises(ProtocolError):
                    client.ping()
                # the deadline bounds the whole retry budget
                assert time.monotonic() - started < 3.0
        finally:
            server.stop()

    def test_constructor_connects_through_failover(self):
        live = _FlakyServer(drop_first=0)
        live.start()
        try:
            # port 1 refuses instantly; the constructor must rotate to
            # the live failover endpoint instead of raising
            with ServiceClient("127.0.0.1", 1, timeout=5.0,
                               failover=[("127.0.0.1", live.port)]) as c:
                assert c.endpoint == ("127.0.0.1", live.port)
                assert c.ping() is True
        finally:
            live.stop()

    def test_failover_rotates_to_a_live_endpoint(self):
        dead = _FlakyServer(drop_first=10_000)
        live = _FlakyServer(drop_first=0)
        dead.start()
        live.start()
        try:
            with ServiceClient(
                "127.0.0.1", dead.port, timeout=5.0,
                failover=[("127.0.0.1", live.port)],
            ) as client:
                assert client.ping() is True
                assert client.endpoint == ("127.0.0.1", live.port)
                assert live.requests_seen == 1
        finally:
            dead.stop()
            live.stop()

    def test_mutation_never_retried(self):
        server = _FlakyServer(drop_first=1)
        server.start()
        try:
            with ServiceClient("127.0.0.1", server.port,
                               timeout=5.0) as client:
                with pytest.raises(ProtocolError):
                    client.create_session("x", "running-example")
            # the dropped request must be the only one: no replay
            assert server.requests_seen == 1
        finally:
            server.stop()

    def test_reconnect_opt_out(self):
        server = _FlakyServer(drop_first=1)
        server.start()
        try:
            with ServiceClient("127.0.0.1", server.port, timeout=5.0,
                               reconnect=False) as client:
                with pytest.raises(ProtocolError):
                    client.ping()
            assert server.requests_seen == 1
        finally:
            server.stop()

    def test_idempotent_set_excludes_mutations(self):
        assert "query" in IDEMPOTENT_OPS
        assert "stats" in IDEMPOTENT_OPS
        assert "metrics" in IDEMPOTENT_OPS
        for op in ("ingest", "create_session", "close", "snapshot",
                   "shutdown", "sync"):
            assert op not in IDEMPOTENT_OPS, op
        assert RECONNECT_BACKOFF < 1.0  # a retry must stay snappy

    def test_connect_timeout_applies_only_to_connect(self, cluster):
        client = ServiceClient("127.0.0.1", cluster.port,
                               timeout=9.0, connect_timeout=3.0)
        try:
            # after connect the steady-state timeout governs the socket
            assert client._sock.gettimeout() == 9.0
            assert client.ping() is True
        finally:
            client.close()

    def test_connect_timeout_reaches_the_socket(self, monkeypatch):
        seen = {}
        real = socket.create_connection

        def spy(address, timeout=None, **kwargs):
            seen["timeout"] = timeout
            return real(address, timeout=timeout, **kwargs)

        monkeypatch.setattr(socket, "create_connection", spy)
        server = _FlakyServer(drop_first=0)
        server.start()
        try:
            with ServiceClient("127.0.0.1", server.port, timeout=9.0,
                               connect_timeout=0.25) as client:
                assert client.ping() is True
            assert seen["timeout"] == 0.25
        finally:
            server.stop()


# ---------------------------------------------------------------------------
# failover through the router: a killed worker restarts and serves on
# ---------------------------------------------------------------------------


class TestWorkerRestart:
    def test_sigkill_one_worker_restarts_and_serves(self, running_spec):
        supervisor, thread = start_cluster(workers=2, shards=2)
        try:
            with ServiceClient("127.0.0.1", supervisor.port,
                               timeout=30.0) as client:
                client.create_session(ALPHA, "running-example")
                run, execution = make_execution(running_spec, size=60,
                                                seed=13)
                vids = sorted(run.graph.vertices())
                client.ingest(ALPHA, execution.insertions)

                victim = session_worker(BETA, 2)
                pid = client.cluster_info()["per_worker"][victim]["pid"]
                import os
                import signal as _signal
                os.kill(pid, _signal.SIGKILL)

                # the fleet heals: a fresh process takes the slot
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    info = client.cluster_info()
                    row = info["per_worker"][victim]
                    if (row["alive"] and row["pid"] != pid
                            and info["restarts"] >= 1):
                        break
                    time.sleep(0.1)
                else:
                    pytest.fail("worker was not restarted in time")

                # the surviving worker's state was never disturbed, and
                # the respawned worker serves fresh sessions
                assert client.query(ALPHA, vids[0], vids[0]) is True
                client.create_session(BETA, "running-example")
                assert set(client.list_sessions()) == {ALPHA, BETA}
        finally:
            stop_cluster(supervisor, thread)
