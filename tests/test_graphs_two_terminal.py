"""Unit tests for two-terminal graphs and their validation."""

from __future__ import annotations

import pytest

from repro.errors import NotTwoTerminalError
from repro.graphs.digraph import NamedDAG
from repro.graphs.two_terminal import TwoTerminalGraph, check_disjoint


def chain(names):
    return TwoTerminalGraph.build(
        list(enumerate(names)), [(i, i + 1) for i in range(len(names) - 1)]
    )


class TestConstruction:
    def test_from_dag_infers_terminals(self):
        g = chain(["s", "m", "t"])
        assert g.source == 0
        assert g.sink == 2

    def test_from_dag_rejects_two_sources(self):
        dag = NamedDAG()
        dag.add_vertex(0, "a")
        dag.add_vertex(1, "b")
        dag.add_vertex(2, "c")
        dag.add_edge(0, 2)
        dag.add_edge(1, 2)
        with pytest.raises(NotTwoTerminalError):
            TwoTerminalGraph.from_dag(dag)

    def test_from_dag_rejects_two_sinks(self):
        dag = NamedDAG()
        dag.add_vertex(0, "a")
        dag.add_vertex(1, "b")
        dag.add_vertex(2, "c")
        dag.add_edge(0, 1)
        dag.add_edge(0, 2)
        with pytest.raises(NotTwoTerminalError):
            TwoTerminalGraph.from_dag(dag)

    def test_explicit_terminals_must_exist(self):
        dag = NamedDAG()
        dag.add_vertex(0, "a")
        with pytest.raises(NotTwoTerminalError):
            TwoTerminalGraph(dag, 0, 5)
        with pytest.raises(NotTwoTerminalError):
            TwoTerminalGraph(dag, 5, 0)

    def test_singleton_graph(self):
        dag = NamedDAG()
        dag.add_vertex(0, "only")
        g = TwoTerminalGraph(dag, 0, 0)
        g.validate()


class TestDelegation:
    def test_len_contains_name(self):
        g = chain(["s", "m", "t"])
        assert len(g) == 3
        assert 1 in g
        assert g.name(1) == "m"

    def test_vertices_edges_names(self):
        g = chain(["s", "t"])
        assert sorted(g.vertices()) == [0, 1]
        assert list(g.edges()) == [(0, 1)]
        assert sorted(g.names()) == ["s", "t"]


class TestValidation:
    def test_valid_chain(self):
        chain(["s", "a", "b", "t"]).validate()

    def test_spanning_violation_detected(self):
        # vertex 3 hangs off the chain and cannot reach the sink
        dag = NamedDAG()
        for vid, name in enumerate(["s", "a", "t", "stray"]):
            dag.add_vertex(vid, name)
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        dag.add_edge(0, 3)
        dag.add_edge(3, 2)
        g = TwoTerminalGraph(dag, 0, 2)
        g.validate()  # 3 is on a source-sink path: fine
        dag2 = NamedDAG()
        for vid, name in enumerate(["s", "a", "t"]):
            dag2.add_vertex(vid, name)
        dag2.add_vertex(3, "stray")
        dag2.add_edge(0, 1)
        dag2.add_edge(1, 2)
        dag2.add_edge(0, 3)
        dag2.add_edge(3, 2)
        dag2.add_vertex(4, "dead")
        dag2.add_edge(0, 4)
        # vertex 4 has no outgoing edge: it is a second sink
        with pytest.raises(NotTwoTerminalError):
            TwoTerminalGraph(dag2, 0, 2).validate()

    def test_spanning_check_can_be_disabled(self):
        dag = NamedDAG()
        for vid, name in enumerate(["s", "mid", "t"]):
            dag.add_vertex(vid, name)
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        TwoTerminalGraph(dag, 0, 2).validate(require_spanning=False)


class TestCopying:
    def test_copy_independent(self):
        g = chain(["s", "t"])
        h = g.copy()
        h.dag.add_vertex(9, "x")
        assert 9 not in g

    def test_relabeled_maps_terminals(self):
        g = chain(["s", "m", "t"])
        h = g.relabeled({0: 10, 1: 20, 2: 30})
        assert h.source == 10
        assert h.sink == 30
        assert h.name(20) == "m"


class TestCheckDisjoint:
    def test_disjoint_ok(self):
        a = chain(["s", "t"])
        b = chain(["s", "t"]).relabeled({0: 10, 1: 11})
        check_disjoint([a, b])

    def test_overlap_rejected(self):
        from repro.errors import GraphError

        a = chain(["s", "t"])
        b = chain(["s", "t"])
        with pytest.raises(GraphError):
            check_disjoint([a, b])
