"""Tests for the Example 15 position-label scheme."""

from __future__ import annotations

import math
import random

import pytest

from repro.datasets import fig12_path_grammar, running_example
from repro.errors import ExecutionError, LabelingError, UnsupportedWorkflowError
from repro.graphs.reachability import reaches
from repro.labeling.path_position import PathPositionScheme, runs_are_paths
from repro.workflow.execution import execution_from_derivation

from tests.conftest import assert_reaches_matches_bfs, small_run


class TestApplicability:
    def test_fig12_qualifies(self):
        assert runs_are_paths(fig12_path_grammar())

    def test_running_example_rejected(self, running_spec):
        assert not runs_are_paths(running_spec)
        with pytest.raises(UnsupportedWorkflowError):
            PathPositionScheme(running_spec)

    def test_fork_disqualifies(self, bioaid_spec):
        assert not runs_are_paths(bioaid_spec)


class TestCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_bfs_on_fig12_runs(self, seed):
        spec = fig12_path_grammar()
        run = small_run(spec, 150, seed=seed)
        scheme = PathPositionScheme(spec)
        labels = scheme.insert_all(execution_from_derivation(run))
        assert_reaches_matches_bfs(
            run.graph,
            lambda a, b: scheme.query(labels[a], labels[b]),
            sample=3000,
            rng=random.Random(seed),
        )

    def test_compact_labels(self):
        """Example 15's point: a nonlinear grammar with O(log n) dynamic
        execution-based labels."""
        spec = fig12_path_grammar()
        run = small_run(spec, 400, seed=4)
        scheme = PathPositionScheme(spec)
        labels = scheme.insert_all(execution_from_derivation(run))
        max_bits = max(scheme.label_bits(l) for l in labels.values())
        assert max_bits <= math.ceil(math.log2(run.run_size())) + 1

    def test_reflexive(self):
        spec = fig12_path_grammar()
        scheme = PathPositionScheme(spec)
        label = scheme.insert(0, preds=[])
        assert scheme.query(label, label)


class TestStructuralGuards:
    def make_scheme(self):
        return PathPositionScheme(fig12_path_grammar())

    def test_duplicate_insert(self):
        scheme = self.make_scheme()
        scheme.insert(0, preds=[])
        with pytest.raises(ExecutionError):
            scheme.insert(0, preds=[])

    def test_two_predecessors_rejected(self):
        scheme = self.make_scheme()
        scheme.insert(0, preds=[])
        scheme.insert(1, preds=[0])
        with pytest.raises(ExecutionError):
            scheme.insert(2, preds=[0, 1])

    def test_branching_rejected(self):
        scheme = self.make_scheme()
        scheme.insert(0, preds=[])
        scheme.insert(1, preds=[0])
        with pytest.raises(ExecutionError):
            scheme.insert(2, preds=[0])  # does not extend the tail

    def test_first_vertex_with_pred_rejected(self):
        scheme = self.make_scheme()
        with pytest.raises(ExecutionError):
            scheme.insert(0, preds=[5])

    def test_unlabeled_lookup(self):
        with pytest.raises(LabelingError):
            self.make_scheme().label(3)
