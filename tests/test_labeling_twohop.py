"""Tests for the 2-hop / pruned-landmark baseline."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import LabelingError
from repro.graphs.random_graphs import random_chain, random_two_terminal_dag
from repro.graphs.reachability import reaches
from repro.labeling.twohop import TwoHopIndex

from tests.conftest import assert_reaches_matches_bfs, small_run


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_bfs_on_random_dags(self, seed):
        g = random_two_terminal_dag(25, random.Random(seed)).dag
        index = TwoHopIndex(g)
        assert_reaches_matches_bfs(g, index.reaches)

    def test_matches_bfs_on_workflow_runs(self, running_spec):
        run = small_run(running_spec, 200, seed=1)
        g = run.graph
        index = TwoHopIndex(g)
        assert_reaches_matches_bfs(
            g, index.reaches, sample=4000, rng=random.Random(2)
        )

    def test_reflexive(self):
        g = random_chain(5).dag
        index = TwoHopIndex(g)
        assert index.reaches(3, 3)

    def test_label_only_query(self):
        g = random_two_terminal_dag(20, random.Random(3)).dag
        index = TwoHopIndex(g)
        for u, v in itertools.product(list(g.vertices())[:10], repeat=2):
            if u == v:
                continue
            assert TwoHopIndex.query(index.label(u), index.label(v)) == reaches(
                g, u, v
            )

    def test_unknown_vertex(self):
        g = random_chain(3).dag
        with pytest.raises(LabelingError):
            TwoHopIndex(g).label(77)


class TestCoverQuality:
    def test_cover_property_holds(self):
        """Every reachable pair shares at least one hub."""
        g = random_two_terminal_dag(30, random.Random(4)).dag
        index = TwoHopIndex(g)
        for u, v in itertools.product(g.vertices(), repeat=2):
            if u != v and reaches(g, u, v):
                out_u, _ = index.label(u)
                _, in_v = index.label(v)
                assert out_u & in_v

    def test_pruning_keeps_hub_sets_small(self):
        """On a path, hub sets stay tiny (pruning removes redundancy)."""
        g = random_chain(64).dag
        index = TwoHopIndex(g)
        # near-logarithmic: far below the ~n/2 unpruned cover
        assert index.average_hubs() < 20

    def test_bits_accounting(self):
        g = random_chain(10).dag
        index = TwoHopIndex(g)
        assert index.total_bits() > 0
        label = index.label(5)
        assert index.label_bits(label) >= len(label[0]) + len(label[1])

    def test_workflow_runs_have_moderate_hub_growth(self, running_spec):
        small = small_run(running_spec, 100, seed=5)
        large = small_run(running_spec, 400, seed=6)
        small_index = TwoHopIndex(small.graph)
        large_index = TwoHopIndex(large.graph)
        # hub sets grow with the run: 2-hop is not compact on runs either
        assert large_index.average_hubs() >= small_index.average_hubs() * 0.5
        assert large_index.total_bits() > small_index.total_bits()
