"""Tests for the Specification container (Definition 5)."""

from __future__ import annotations

import pytest

from repro.datasets import running_example
from repro.errors import SpecificationError
from repro.graphs.two_terminal import TwoTerminalGraph
from repro.workflow.specification import START_KEY, make_spec


def chain(names):
    return TwoTerminalGraph.build(
        list(enumerate(names)), [(i, i + 1) for i in range(len(names) - 1)]
    )


class TestNameSets:
    def test_running_example_names(self, running_spec):
        assert running_spec.composite_names == {"L", "F", "A", "B", "C"}
        assert {"s0", "t0", "s3", "t4"} <= running_spec.atomic_names
        assert running_spec.names == (
            running_spec.atomic_names | running_spec.composite_names
        )

    def test_is_atomic_loop_fork(self, running_spec):
        assert running_spec.is_atomic("s0")
        assert not running_spec.is_atomic("A")
        assert running_spec.is_loop("L")
        assert not running_spec.is_loop("F")
        assert running_spec.is_fork("F")
        assert not running_spec.is_fork("L")


class TestGraphAccess:
    def test_graph_keys_start_first(self, running_spec):
        keys = list(running_spec.graph_keys())
        assert keys[0] == START_KEY
        assert set(keys) == {START_KEY, "L#0", "F#0", "A#0", "A#1", "B#0", "C#0"}

    def test_impl_keys_ordered(self, running_spec):
        assert running_spec.impl_keys("A") == ["A#0", "A#1"]

    def test_impl_keys_unknown_head(self, running_spec):
        with pytest.raises(SpecificationError):
            running_spec.impl_keys("Z")

    def test_head_of(self, running_spec):
        assert running_spec.head_of(START_KEY) is None
        assert running_spec.head_of("A#1") == "A"

    def test_graph_lookup(self, running_spec):
        g = running_spec.graph("B#0")
        assert sorted(g.names()) == ["s5", "t5"]

    def test_unknown_graph_key(self, running_spec):
        with pytest.raises(SpecificationError):
            running_spec.graph("nope")

    def test_graphs_to_label_is_G_of_S(self, running_spec):
        table = running_spec.graphs_to_label()
        assert len(table) == 7  # g0 + 6 implementations


class TestStatistics:
    def test_max_graph_size(self, running_spec):
        assert running_spec.max_graph_size == 4  # h3 = s3,B,C,t3

    def test_average_graph_size(self, running_spec):
        sizes = [len(running_spec.graph(k)) for k in running_spec.graph_keys()]
        assert running_spec.average_graph_size == pytest.approx(
            sum(sizes) / len(sizes)
        )

    def test_stats_shape(self, running_spec):
        stats = running_spec.stats()
        assert stats["composites"] == 5
        assert stats["loops"] == 1
        assert stats["forks"] == 4 - 3  # exactly one fork


class TestMakeSpecValidation:
    def test_valid_spec_builds(self):
        running_example()  # validates internally

    def test_loop_name_without_impl_rejected(self):
        g0 = chain(["s", "X", "t"])
        hx = chain(["sx", "tx"])
        with pytest.raises(SpecificationError):
            make_spec(g0, [("X", hx)], loops=["Y"])

    def test_loop_and_fork_overlap_rejected(self):
        g0 = chain(["s", "X", "t"])
        hx = chain(["sx", "tx"])
        with pytest.raises(SpecificationError):
            make_spec(g0, [("X", hx)], loops=["X"], forks=["X"])

    def test_composite_terminal_rejected(self):
        g0 = chain(["s", "X", "t"])
        # X's implementation starts with a composite source
        hx = chain(["Y", "tx"])
        hy = chain(["sy", "ty"])
        with pytest.raises(SpecificationError):
            make_spec(g0, [("X", hx), ("Y", hy)])

    def test_unproductive_spec_rejected(self):
        g0 = chain(["s", "X", "t"])
        # X can only ever derive another X: no terminating implementation
        hx = chain(["sx", "X", "tx"])
        with pytest.raises(SpecificationError):
            make_spec(g0, [("X", hx)])

    def test_validation_can_be_skipped(self):
        g0 = chain(["s", "X", "t"])
        hx = chain(["sx", "X", "tx"])
        spec = make_spec(g0, [("X", hx)], validate=False)
        assert spec.composite_names == {"X"}
