"""Tests for the chain-decomposition reachability index."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import LabelingError
from repro.graphs.digraph import NamedDAG
from repro.graphs.random_graphs import random_chain, random_two_terminal_dag
from repro.graphs.reachability import reaches
from repro.labeling.chains import ChainIndex, greedy_chain_decomposition

from tests.conftest import assert_reaches_matches_bfs, small_run


class TestDecomposition:
    def test_chains_partition_vertices(self):
        g = random_two_terminal_dag(25, random.Random(1)).dag
        chains = greedy_chain_decomposition(g)
        flat = [v for chain in chains for v in chain]
        assert sorted(flat) == sorted(g.vertices())
        assert len(set(flat)) == len(flat)

    def test_chains_follow_edges(self):
        g = random_two_terminal_dag(25, random.Random(2)).dag
        for chain in greedy_chain_decomposition(g):
            for u, v in zip(chain, chain[1:]):
                assert g.has_edge(u, v)

    def test_path_graph_single_chain(self):
        g = random_chain(10).dag
        chains = greedy_chain_decomposition(g)
        assert len(chains) == 1
        assert chains[0] == list(range(10))

    def test_antichain_one_per_vertex(self):
        g = NamedDAG()
        for vid in range(5):
            g.add_vertex(vid, f"v{vid}")
        assert len(greedy_chain_decomposition(g)) == 5


class TestQueries:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bfs_on_random_dags(self, seed):
        g = random_two_terminal_dag(25, random.Random(seed)).dag
        index = ChainIndex(g)
        assert_reaches_matches_bfs(g, index.reaches)

    def test_matches_bfs_on_workflow_runs(self, running_spec):
        run = small_run(running_spec, 180, seed=3)
        g = run.graph
        index = ChainIndex(g)
        assert_reaches_matches_bfs(
            g, index.reaches, sample=4000, rng=random.Random(4)
        )

    def test_reflexive(self):
        g = random_chain(4).dag
        index = ChainIndex(g)
        assert index.reaches(2, 2)

    def test_label_only_query(self):
        g = random_two_terminal_dag(15, random.Random(5)).dag
        index = ChainIndex(g)
        la, lb = index.label(0), index.label(14)
        assert ChainIndex.query(la, lb) == reaches(g, 0, 14)

    def test_unknown_vertex_rejected(self):
        g = random_chain(3).dag
        with pytest.raises(LabelingError):
            ChainIndex(g).label(42)


class TestAccounting:
    def test_label_bits_grow_with_chain_count(self, running_spec):
        # fork-heavy runs need many chains: per-vertex storage grows,
        # which is exactly the cost DRL's specification-awareness avoids
        run = small_run(running_spec, 250, seed=6)
        index = ChainIndex(run.graph)
        assert index.chain_count > 1
        bits = [index.label_bits(index.label(v)) for v in run.graph.vertices()]
        assert min(bits) >= index.chain_count  # one presence bit per chain

    def test_total_bits_positive(self):
        g = random_chain(6).dag
        index = ChainIndex(g)
        assert index.total_bits() > 0
