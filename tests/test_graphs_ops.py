"""Tests for the four graph operations (Definitions 1-4)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.digraph import NamedDAG
from repro.graphs.ops import (
    insert_vertex,
    parallel_composition,
    replace_vertex,
    series_composition,
)
from repro.graphs.reachability import closure_pairs, reaches
from repro.graphs.two_terminal import TwoTerminalGraph


def chain(names, offset=0):
    vertices = [(offset + i, n) for i, n in enumerate(names)]
    edges = [(offset + i, offset + i + 1) for i in range(len(names) - 1)]
    return TwoTerminalGraph.build(vertices, edges)


class TestSeriesComposition:
    def test_links_sinks_to_sources(self):
        a = chain(["s1", "t1"])
        b = chain(["s2", "t2"], offset=10)
        combined = series_composition([a, b])
        assert combined.source == 0
        assert combined.sink == 11
        assert combined.dag.has_edge(1, 10)

    def test_every_left_vertex_reaches_every_right_vertex(self):
        a = chain(["s1", "m1", "t1"])
        b = chain(["s2", "m2", "t2"], offset=10)
        combined = series_composition([a, b])
        for u in a.vertices():
            for v in b.vertices():
                assert reaches(combined.dag, u, v)
                assert not reaches(combined.dag, v, u)

    def test_three_way_series(self):
        parts = [chain(["s", "t"], offset=10 * i) for i in range(3)]
        combined = series_composition(parts)
        assert reaches(combined.dag, 0, 21)
        combined.validate()

    def test_empty_series_rejected(self):
        with pytest.raises(GraphError):
            series_composition([])

    def test_overlapping_ids_rejected(self):
        with pytest.raises(GraphError):
            series_composition([chain(["s", "t"]), chain(["s", "t"])])


class TestParallelComposition:
    def test_no_cross_edges(self):
        a = chain(["s1", "t1"])
        b = chain(["s2", "t2"], offset=10)
        merged = parallel_composition([a, b])
        for u in a.vertices():
            for v in b.vertices():
                assert not reaches(merged, u, v)
                assert not reaches(merged, v, u)

    def test_union_of_vertices(self):
        a = chain(["s1", "t1"])
        b = chain(["s2", "t2"], offset=10)
        merged = parallel_composition([a, b])
        assert len(merged) == 4
        assert merged.edge_count() == 2

    def test_empty_parallel_rejected(self):
        with pytest.raises(GraphError):
            parallel_composition([])


class TestInsertVertex:
    def test_insertion_adds_edges_from_predecessors(self):
        g = NamedDAG()
        g.add_vertex(0, "a")
        g.add_vertex(1, "b")
        insert_vertex(g, 2, "c", preds=[0, 1])
        assert g.predecessors(2) == {0, 1}

    def test_insertion_with_no_predecessors(self):
        g = NamedDAG()
        insert_vertex(g, 0, "root", preds=[])
        assert g.in_degree(0) == 0

    def test_unknown_predecessor_rejected(self):
        g = NamedDAG()
        with pytest.raises(GraphError):
            insert_vertex(g, 0, "a", preds=[99])

    def test_insertion_preserves_existing_reachability(self):
        g = NamedDAG()
        g.add_vertex(0, "a")
        g.add_vertex(1, "b")
        g.add_edge(0, 1)
        before = closure_pairs(g)
        insert_vertex(g, 2, "c", preds=[1])
        after = closure_pairs(g)
        assert before <= after  # Remark 1: old pairs never change


class TestReplaceVertex:
    def base_graph(self):
        g = NamedDAG()
        for vid, name in enumerate(["s", "U", "t"]):
            g.add_vertex(vid, name)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        return g

    def test_two_terminal_body(self):
        g = self.base_graph()
        body = chain(["x", "y"], offset=10).dag
        replace_vertex(g, 1, body)
        assert 1 not in g
        assert g.has_edge(0, 10)
        assert g.has_edge(11, 2)
        assert reaches(g, 0, 2)

    def test_parallel_body_wires_all_sources_and_sinks(self):
        g = self.base_graph()
        body = parallel_composition(
            [chain(["x1", "y1"], offset=10), chain(["x2", "y2"], offset=20)]
        )
        replace_vertex(g, 1, body)
        assert g.successors(0) == {10, 20}
        assert g.predecessors(2) == {11, 21}

    def test_replacement_preserves_reachability_of_others(self):
        g = self.base_graph()
        g.add_vertex(3, "side")
        g.add_edge(0, 3)
        g.add_edge(3, 2)
        before = {
            (u, v)
            for (u, v) in closure_pairs(g)
            if u != 1 and v != 1
        }
        replace_vertex(g, 1, chain(["x"], offset=10).dag)
        after = closure_pairs(g)
        assert before <= after  # Lemma 4.3

    def test_missing_target_rejected(self):
        g = self.base_graph()
        with pytest.raises(GraphError):
            replace_vertex(g, 9, chain(["x"], offset=10).dag)

    def test_id_collision_rejected(self):
        g = self.base_graph()
        with pytest.raises(GraphError):
            replace_vertex(g, 1, chain(["x"], offset=0).dag)

    def test_replacing_source_vertex(self):
        g = NamedDAG()
        g.add_vertex(0, "U")
        g.add_vertex(1, "t")
        g.add_edge(0, 1)
        replace_vertex(g, 0, chain(["x", "y"], offset=10).dag)
        assert g.sources() == [10]
        assert reaches(g, 10, 1)
