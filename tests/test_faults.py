"""Tests for the deterministic failpoint registry (repro.faults).

The registry's contract: unarmed hits are free no-ops with no
behavioral effect; arming is validated against the frozen catalog;
``raise`` fires :class:`FailpointError` exactly on the N-th hit and
then disarms itself (one-shot), so a recovery path re-entering the
same site never re-fires.  The ``crash`` action (``os._exit(170)``)
is exercised against real subprocesses in ``tests/test_replication.py``.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    ENV_VAR,
    FAILPOINT_NAMES,
    FAILPOINTS,
    FailpointError,
    FailpointRegistry,
)


@pytest.fixture(autouse=True)
def clean_global_registry():
    FAILPOINTS.disarm()
    yield
    FAILPOINTS.disarm()


class TestUnarmed:
    def test_hit_is_a_no_op(self):
        registry = FailpointRegistry()
        for name in sorted(FAILPOINT_NAMES):
            registry.hit(name)  # must not raise, must not exit
        assert registry.armed() == {}

    def test_unregistered_name_is_still_a_no_op_when_unarmed(self):
        # the lint rule rejects such call sites; the runtime fast path
        # must not pay for a membership check on every hit
        FailpointRegistry().hit("definitely.not.registered")

    def test_fast_path_is_attribute_plus_none_check(self):
        # the production invariant: nothing armed means _armed is None,
        # so hit() returns before any dict lookup
        registry = FailpointRegistry()
        assert registry._armed is None
        registry.arm("wal.pre_fsync", "raise")
        registry.disarm()
        assert registry._armed is None


class TestArming:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            FailpointRegistry().arm("wal.no_such_point")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint action"):
            FailpointRegistry().arm("wal.pre_fsync", "explode")

    def test_nonpositive_nth_rejected(self):
        with pytest.raises(ValueError, match="1-based"):
            FailpointRegistry().arm("wal.pre_fsync", "raise", 0)

    def test_armed_table_reports_action_and_nth(self):
        registry = FailpointRegistry()
        registry.arm("wal.pre_fsync", "raise", 3)
        registry.arm("ckpt.pre_flip", "crash")
        assert registry.armed() == {
            "wal.pre_fsync": "raise@3",
            "ckpt.pre_flip": "crash@1",
        }

    def test_disarm_one_and_all(self):
        registry = FailpointRegistry()
        registry.arm("wal.pre_fsync", "raise")
        registry.arm("ckpt.pre_flip", "raise")
        registry.disarm("wal.pre_fsync")
        assert registry.armed() == {"ckpt.pre_flip": "raise@1"}
        registry.disarm()
        assert registry.armed() == {}


class TestFiring:
    def test_fires_on_first_hit_by_default(self):
        registry = FailpointRegistry()
        registry.arm("repl.pre_apply", "raise")
        with pytest.raises(FailpointError, match="repl.pre_apply"):
            registry.hit("repl.pre_apply")

    def test_fires_exactly_on_nth_hit(self):
        registry = FailpointRegistry()
        registry.arm("wal.pre_append", "raise", 3)
        registry.hit("wal.pre_append")
        registry.hit("wal.pre_append")
        with pytest.raises(FailpointError):
            registry.hit("wal.pre_append")

    def test_one_shot_disarms_before_firing(self):
        registry = FailpointRegistry()
        registry.arm("wal.pre_append", "raise")
        with pytest.raises(FailpointError):
            registry.hit("wal.pre_append")
        assert registry.armed() == {}
        registry.hit("wal.pre_append")  # recovery re-entry: silent

    def test_other_points_unaffected(self):
        registry = FailpointRegistry()
        registry.arm("wal.pre_append", "raise")
        registry.hit("wal.pre_fsync")
        registry.hit("ckpt.pre_flip")
        assert registry.armed() == {"wal.pre_append": "raise@1"}


class TestSpecParsing:
    def test_spec_round_trip(self):
        registry = FailpointRegistry()
        assert registry.arm_from_spec(
            "wal.pre_fsync=crash, ckpt.pre_flip=raise@2"
        ) == 2
        assert registry.armed() == {
            "wal.pre_fsync": "crash@1",
            "ckpt.pre_flip": "raise@2",
        }

    def test_empty_clauses_skipped(self):
        registry = FailpointRegistry()
        assert registry.arm_from_spec("") == 0
        assert registry.arm_from_spec(" , ,") == 0

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="bad failpoint clause"):
            FailpointRegistry().arm_from_spec("wal.pre_fsync")

    def test_bad_nth_rejected(self):
        with pytest.raises(ValueError):
            FailpointRegistry().arm_from_spec("wal.pre_fsync=crash@soon")

    def test_env_arming(self):
        registry = FailpointRegistry()
        count = registry.arm_from_env({ENV_VAR: "repl.post_apply=raise"})
        assert count == 1
        assert registry.armed() == {"repl.post_apply": "raise@1"}

    def test_env_unset_is_zero(self):
        registry = FailpointRegistry()
        assert registry.arm_from_env({}) == 0
        assert registry.armed() == {}


class TestCatalog:
    def test_every_hit_site_name_is_registered(self):
        # the lint rule (failpoint-names) enforces this statically on
        # the real tree; assert here that the catalog itself is sane
        for name in FAILPOINT_NAMES:
            domain, _, point = name.partition(".")
            assert domain in {"wal", "ckpt", "repl", "cluster"}, name
            assert point, name

    def test_global_registry_starts_unarmed(self):
        assert FAILPOINTS.armed() == {}
