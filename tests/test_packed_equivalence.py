"""Packed-vs-legacy equivalence: the property suite of the fast path.

The packed representation (:mod:`repro.labeling.compact`) is only
allowed to be *faster* -- never different.  For every conformance
workload and every dynamic scheme (``drl``, ``naive``,
``path-position``) this suite holds the packed path to answer-for-
answer equality with the reference through all three query surfaces:

* ``reaches`` / ``query`` -- the single-pair protocol method;
* ``query_many`` -- the batch kernel the service engine uses;
* a serialize round-trip -- labels encoded by the scheme's codec and
  decoded in a *fresh* codec instance must answer identically (and,
  for drl, byte-identically re-encode).

Plus representation-level properties for drl: pack/unpack is lossless,
bit accounting matches the reference exactly, and version-1 stores
(the entry-format wire) decode into equivalent packed labels.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import LabelingError
from repro.labeling.compact import (
    CompactDRL,
    SkeletonBitsets,
    is_packed,
    pack_label,
    unpack_label,
)
from repro.labeling.drl import DRL
from repro.labeling.serialize import LabelCodec, codec_for_scheme
from repro.schemes import registry

from tests.test_schemes_conformance import WORKLOAD_IDS, _workload

DYNAMIC_SCHEMES = ("drl", "naive", "path-position")
SAMPLE_PAIRS = 1500


def _build_or_skip(scheme_name, workload_id, **options):
    workload = _workload(workload_id)
    cls = registry.get(scheme_name)
    reason = cls.supports(workload)
    if reason is not None:
        pytest.skip(reason)
    return registry.build(scheme_name, workload, **options), workload


def _sampled_pairs(workload, seed=29, count=SAMPLE_PAIRS):
    vertices = sorted(workload.graph.vertices())
    rng = random.Random(seed)
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(count)
    ]
    # always include reflexive probes: the identity fast path
    pairs.extend((v, v) for v in vertices[:25])
    return pairs


class TestQuerySurfacesAgree:
    """reaches == query_many == serialized round-trip, per scheme."""

    @pytest.mark.parametrize("workload_id", WORKLOAD_IDS)
    @pytest.mark.parametrize("scheme_name", DYNAMIC_SCHEMES)
    def test_batch_kernel_matches_single_pair(self, scheme_name, workload_id):
        scheme, workload = _build_or_skip(scheme_name, workload_id)
        assert scheme.capabilities.batch
        pairs = _sampled_pairs(workload)
        singles = [scheme.reaches(a, b) for a, b in pairs]
        assert scheme.query_many(pairs) == singles

    @pytest.mark.parametrize("workload_id", WORKLOAD_IDS)
    @pytest.mark.parametrize("scheme_name", DYNAMIC_SCHEMES)
    def test_serialize_round_trip_answers_identically(
        self, scheme_name, workload_id
    ):
        scheme, workload = _build_or_skip(scheme_name, workload_id)
        encoder = codec_for_scheme(scheme_name, workload.spec)
        decoder = codec_for_scheme(scheme_name, workload.spec)  # fresh
        reloaded = {}
        for vid in scheme.labeled_vertices():
            payload, bits = encoder.encode(scheme.label_of(vid))
            reloaded[vid] = decoder.decode(payload, bits)
        for a, b in _sampled_pairs(workload):
            assert scheme.reaches_labels(reloaded[a], reloaded[b]) == \
                scheme.reaches(a, b)

    @pytest.mark.parametrize("workload_id", WORKLOAD_IDS)
    def test_packed_drl_matches_legacy_drl(self, workload_id):
        packed, workload = _build_or_skip("drl", workload_id)
        legacy, _ = _build_or_skip("drl", workload_id, packed=False)
        assert packed.packed and not legacy.packed
        pairs = _sampled_pairs(workload)
        assert packed.query_many(pairs) == legacy.query_many(pairs)
        for a, b in pairs[:400]:
            assert packed.reaches(a, b) == legacy.reaches(a, b)


class TestPackedRepresentation:
    """Pack/unpack is lossless; accounting and wire formats agree."""

    @pytest.mark.parametrize(
        "workload_id", ["running-example", "bioaid-norec", "fig12-path"]
    )
    def test_pack_unpack_lossless_and_bits_equal(self, workload_id):
        packed, workload = _build_or_skip("drl", workload_id)
        legacy, _ = _build_or_skip("drl", workload_id, packed=False)
        drl_packed: CompactDRL = packed.drl
        drl_legacy: DRL = legacy.drl
        for vid in packed.labeled_vertices():
            packed_label = packed.label_of(vid)
            legacy_label = legacy.label_of(vid)
            assert is_packed(packed_label)
            assert not is_packed(legacy_label)
            assert drl_packed.pack(legacy_label) == packed_label
            assert drl_packed.unpack(packed_label) == legacy_label
            assert drl_packed.label_bits(packed_label) == \
                drl_legacy.label_bits(legacy_label)

    def test_labels_share_structure_per_node(self):
        """Vertices at one parse-tree node share tuples by identity."""
        packed, _ = _build_or_skip("drl", "running-example")
        by_indexes = {}
        for vid in packed.labeled_vertices():
            indexes, prefix, _last = packed.label_of(vid)
            by_indexes.setdefault(id(indexes), []).append(id(prefix))
        # at least one node hosts several vertices, and they share both
        # the index vector and the meta prefix by object identity
        shared = [group for group in by_indexes.values() if len(group) > 1]
        assert shared
        for group in shared:
            assert len(set(group)) == 1

    def test_wire_v1_store_decodes_to_equivalent_packed(self, tmp_path):
        """Old entry-format stores stay loadable: decode_compat packs."""
        from repro.io.labelstore import load_labels, save_labels

        workload = _workload("running-example")
        legacy, _ = _build_or_skip("drl", "running-example", packed=False)
        bitsets = SkeletonBitsets(workload.spec)
        v1 = LabelCodec(workload.spec)
        drl_codec = codec_for_scheme("drl", workload.spec)
        for vid in list(legacy.labeled_vertices())[:50]:
            label = legacy.label_of(vid)
            payload, bits = v1.encode(label)
            decoded = drl_codec.decode_compat(payload, bits, wire=1)
            assert decoded == pack_label(bitsets, label)
        # and a store written today round-trips through the file layer
        labels = {v: legacy.label_of(v) for v in legacy.labeled_vertices()}
        path = tmp_path / "labels.json"
        save_labels(labels, workload.spec, path, scheme="drl")
        reloaded = load_labels(workload.spec, path)
        assert reloaded == {
            v: pack_label(bitsets, label) for v, label in labels.items()
        }

    def test_wire_v2_never_wider_than_v1(self):
        """The packed wire format shrinks (or ties) every label."""
        workload = _workload("bioaid-norec")
        legacy, _ = _build_or_skip("drl", "bioaid-norec", packed=False)
        v1 = LabelCodec(workload.spec)
        v2 = codec_for_scheme("drl", workload.spec)
        total_v1 = total_v2 = 0
        for vid in legacy.labeled_vertices():
            label = legacy.label_of(vid)
            _, bits_v1 = v1.encode(label)
            _, bits_v2 = v2.encode(label)
            assert bits_v2 <= bits_v1
            total_v1 += bits_v1
            total_v2 += bits_v2
        assert total_v2 < total_v1

    def test_unknown_wire_version_rejected(self):
        workload = _workload("running-example")
        codec = codec_for_scheme("drl", workload.spec)
        with pytest.raises(LabelingError):
            codec.decode_compat(b"\x00", 8, wire=99)

    def test_mixed_run_labels_rejected_across_runs(self):
        """Packed query still detects labels from different runs."""
        packed_a, workload = _build_or_skip("drl", "running-example")
        drl: CompactDRL = packed_a.drl
        label = packed_a.label_of(sorted(packed_a.labeled_vertices())[0])
        indexes, prefix, last = label
        foreign = ((indexes[0] + 1,) + indexes[1:], prefix, last)
        with pytest.raises(LabelingError):
            drl.query(label, foreign)


class TestSkeletonBitsets:
    def test_matches_skeleton_scheme(self):
        from repro.labeling.skeleton import make_skeleton

        workload = _workload("running-example")
        spec = workload.spec
        bitsets = SkeletonBitsets(spec)
        tcl = make_skeleton(spec, "tcl")
        for key in spec.graph_keys():
            vertices = sorted(spec.graph(key).vertices())
            for u in vertices:
                for v in vertices:
                    assert bitsets.reaches(key, u, v) == tcl.reaches(
                        key, u, v
                    )

    def test_ids_deterministic_across_instances(self):
        spec = _workload("bioaid-norec").spec
        a = SkeletonBitsets(spec)
        b = SkeletonBitsets(spec)
        assert a.num_ids == b.num_ids
        for key in spec.graph_keys():
            for v in sorted(spec.graph(key).vertices()):
                assert a.sid(key, v) == b.sid(key, v)
                assert a.ref_of(a.sid(key, v)) == b.ref_of(b.sid(key, v))

    def test_unknown_vertex_rejected(self):
        spec = _workload("running-example").spec
        bitsets = SkeletonBitsets(spec)
        with pytest.raises(LabelingError):
            bitsets.sid("no-such-graph", 0)
        with pytest.raises(LabelingError):
            bitsets.ref_of(10**9)


class TestUnpackRoundTrip:
    def test_unpack_then_pack_is_identity_on_run_labels(self):
        packed, _ = _build_or_skip("drl", "bioaid-norec")
        drl: CompactDRL = packed.drl
        for vid in packed.labeled_vertices():
            label = packed.label_of(vid)
            assert drl.pack(drl.unpack(label)) == label

    def test_unpack_rejects_malformed(self):
        packed, _ = _build_or_skip("drl", "running-example")
        drl: CompactDRL = packed.drl
        with pytest.raises(LabelingError):
            unpack_label(drl.bitsets, ((1, 2), (), 0))
