"""Executable theory: the compactness results of Sections 3 and 6.

These tests turn the paper's bound statements into measurements:

* Theorem 1's counting argument -- the Figure 6 grammar forces the label
  domain reserved for the ``a``-vertices to (at least) double per
  recursion level, so distinct runs need many distinct labels;
* the Theta(n) upper bound of Section 3.2 (exactly ``n - 1`` bits);
* Lemma 4.1 / Theorem 3 -- logarithmic labels for linear recursion;
* Example 15 -- the Figure 12 grammar admits a compact execution-based
  scheme even though it is nonlinear (runs are paths).
"""

from __future__ import annotations

import math
import random

from repro.datasets import fig12_path_grammar, theorem1_grammar
from repro.labeling.drl import DRL
from repro.labeling.naive_dynamic import NaiveDynamicScheme
from repro.workflow.derivation import DerivationEngine
from repro.workflow.enumerate_runs import enumerate_runs
from repro.workflow.execution import execution_from_derivation

from tests.conftest import small_run


def derive_lk_run(spec, k: int, branch: int = 1):
    """A run of the Figure 6 grammar applying ``A := h1`` exactly k times.

    Recursion continues through the A copy at position ``branch`` of the
    body (0 = the R-compressed one, 1 = the other parallel one); the
    sibling terminates with ``A := h2``.  One member of L_k(G).
    """
    eng = DerivationEngine(spec)
    eng.begin()
    depth = {v: k for v in eng.pending}
    while eng.pending:
        target = min(eng.pending)
        remaining = depth.pop(target)
        if remaining > 0:
            step = eng.expand(target, "A#0")
            new_pending = sorted(
                v for v in step.copies[0].mapping.values() if v in eng.pending
            )
            for i, vid in enumerate(new_pending):
                depth[vid] = remaining - 1 if i == branch else 0
        else:
            eng.expand(target, "A#1")
    return eng.finish()


class TestTheorem1:
    def test_a_labels_distinct_within_every_run(self, theorem1_spec):
        """The proof's invariant: within one run, every differential 'a'
        vertex separates two recursion subtrees, so their labels are
        pairwise distinct; the label population across the bounded
        language is large."""
        scheme = DRL(theorem1_spec, r_mode="one_r")
        population = set()
        runs = 0
        for run in enumerate_runs(theorem1_spec, max_size=40, max_copies=1):
            labels = scheme.label_derivation(run)
            a_labels = [
                labels[v]
                for v in run.graph.vertices()
                if run.graph.name(v) == "a"
            ]
            assert len(set(a_labels)) == len(a_labels)
            population.update(a_labels)
            runs += 1
        assert runs >= 100  # the language explodes combinatorially
        assert len(population) >= 50

    def test_linear_label_growth_through_uncompressed_branch(
        self, theorem1_spec
    ):
        """Recursion through the non-R-compressed parallel branch grows
        the parse tree depth, and labels grow linearly -- the Theorem 1 /
        Theorem 5 behaviour."""
        scheme = DRL(theorem1_spec, r_mode="one_r")
        sizes = []
        for k in (4, 8, 16):
            run = derive_lk_run(theorem1_spec, k, branch=1)
            labels = scheme.label_derivation(run)
            run_labels = [labels[v] for v in run.graph.vertices()]
            sizes.append(max(scheme.label_bits(l) for l in run_labels))
        # doubling k roughly doubles the max label: super-logarithmic
        assert sizes[1] >= sizes[0] * 1.5
        assert sizes[2] >= sizes[1] * 1.5

    def test_one_r_compression_keeps_designated_branch_compact(
        self, theorem1_spec
    ):
        """Contrast: recursing only through the designated vertex stays in
        one R chain, so labels grow logarithmically -- the Section 6
        optimization working as intended."""
        scheme = DRL(theorem1_spec, r_mode="one_r")
        sizes = []
        for k in (4, 8, 16):
            run = derive_lk_run(theorem1_spec, k, branch=0)
            labels = scheme.label_derivation(run)
            run_labels = [labels[v] for v in run.graph.vertices()]
            sizes.append(max(scheme.label_bits(l) for l in run_labels))
        assert sizes[2] - sizes[0] <= 8

    def test_naive_scheme_matches_upper_bound_exactly(self, theorem1_spec):
        run = derive_lk_run(theorem1_spec, 8)
        naive = NaiveDynamicScheme()
        labels = naive.insert_all(execution_from_derivation(run))
        n = run.run_size()
        assert max(l.bits for l in labels.values()) == n - 1


class TestLinearRecursionCompactness:
    def test_logarithmic_with_small_constant(self, running_spec):
        """Theorem 3 on the running example: max bits ~ c*log2(n) + C."""
        scheme = DRL(running_spec)
        measurements = []
        for size in (200, 800, 3200):
            run = small_run(running_spec, size, seed=size)
            labels = scheme.label_derivation(run)
            run_labels = [labels[v] for v in run.graph.vertices()]
            measurements.append(
                (run.run_size(), max(scheme.label_bits(l) for l in run_labels))
            )
        for (n1, b1), (n2, b2) in zip(measurements, measurements[1:]):
            doublings = math.log2(n2 / n1)
            assert b2 - b1 <= 6 * doublings + 6


class TestExample15:
    def test_path_grammar_allows_compact_execution_labels(self):
        """Example 15: runs of Figure 12 are paths, so labeling by
        insertion position is compact -- the naive bitset scheme is
        overkill but position indexes alone decide reachability."""
        spec = fig12_path_grammar()
        run = small_run(spec, 150, seed=1)
        exe = execution_from_derivation(run)
        position = {ins.vid: i for i, ins in enumerate(exe)}
        from repro.graphs.reachability import reaches

        g = run.graph
        vs = sorted(g.vertices())
        rng = random.Random(2)
        for _ in range(2000):
            a, b = rng.choice(vs), rng.choice(vs)
            # on a path, topological position decides reachability
            assert reaches(g, a, b) == (position[a] <= position[b])
