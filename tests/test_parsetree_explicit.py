"""Tests for the explicit parse tree and Algorithm 2."""

from __future__ import annotations

import random

import pytest

from repro.datasets import synthetic_spec, theorem1_grammar
from repro.errors import DerivationError, LabelingError
from repro.parsetree.explicit import (
    ExplicitParseTree,
    NodeKind,
    build_explicit_tree,
)
from repro.workflow.derivation import DerivationEngine
from repro.workflow.grammar import analyze_grammar

from tests.conftest import small_run


def build_running_tree(spec, loop_copies=2, fork_copies=2, recursion_depth=1):
    """A hand-driven derivation of the running example (Figures 3/9)."""
    eng = DerivationEngine(spec)
    eng.begin()
    tree = ExplicitParseTree(spec)
    tree.begin(eng.derivation.start_instance)

    loop_vid = next(iter(eng.pending))
    tree.apply_step(eng.expand(loop_vid, "L#0", copies=loop_copies))
    for fork_vid in [v for v, h in dict(eng.pending).items() if h == "F"]:
        tree.apply_step(eng.expand(fork_vid, "F#0", copies=fork_copies))
    depth_left = {v: recursion_depth for v in eng.pending}
    while eng.pending:
        v = min(eng.pending)
        head = eng.pending[v]
        remaining = depth_left.pop(v, recursion_depth)
        if head == "A":
            impl = "A#0" if remaining > 0 else "A#1"
            step = eng.expand(v, impl)
        elif head == "B":
            step = eng.expand(v, "B#0")
        else:  # C
            step = eng.expand(v, "C#0")
        for inst in step.copies:
            for tv, run_vid in inst.mapping.items():
                depth_left[run_vid] = remaining - (1 if head == "C" else 0)
        tree.apply_step(step)
    return eng.finish(), tree


class TestTreeShape:
    def test_root_annotated_with_start_graph(self, running_spec):
        _, tree = build_running_tree(running_spec)
        assert tree.root is not None
        assert tree.root.kind is NodeKind.N
        assert tree.root.instance.key == "g0"
        assert tree.root.index == 0

    def test_loop_node_has_copy_children(self, running_spec):
        _, tree = build_running_tree(running_spec, loop_copies=3)
        (l_node,) = [
            n for n in tree.nodes() if n.kind is NodeKind.L
        ]
        assert len(l_node.children) == 3
        assert [c.index for c in l_node.children] == [1, 2, 3]
        assert all(c.kind is NodeKind.N for c in l_node.children)

    def test_fork_nodes_created(self, running_spec):
        _, tree = build_running_tree(running_spec, loop_copies=2, fork_copies=2)
        f_nodes = [n for n in tree.nodes() if n.kind is NodeKind.F]
        assert len(f_nodes) == 2  # one per loop copy
        for f in f_nodes:
            assert len(f.children) == 2

    def test_recursion_chain_under_r_node(self, running_spec):
        _, tree = build_running_tree(
            running_spec, loop_copies=1, fork_copies=1, recursion_depth=2
        )
        r_nodes = [n for n in tree.nodes() if n.kind is NodeKind.R]
        assert r_nodes, "recursion must create an R node"
        for r in r_nodes:
            # chain elements are siblings of increasing index
            assert [c.index for c in r.children] == list(
                range(1, len(r.children) + 1)
            )
            # all chain elements annotated with h3 or h6 or h4
            keys = {c.instance.key for c in r.children}
            assert keys <= {"A#0", "A#1", "C#0"}

    def test_contexts_registered(self, running_spec):
        run, tree = build_running_tree(running_spec)
        for v in run.graph.vertices():
            node, tv = tree.context_of(v)
            assert node.kind is NodeKind.N
            template = running_spec.graph(node.instance.key)
            assert template.name(tv) == run.graph.name(v)

    def test_unknown_vertex_context(self, running_spec):
        _, tree = build_running_tree(running_spec)
        with pytest.raises(LabelingError):
            tree.context_of(10**9)


class TestDepthBound:
    def test_lemma_4_1_on_running_example(self, running_spec):
        # deep recursion: depth stays bounded by 2 * |composites|
        _, tree = build_running_tree(
            running_spec, loop_copies=4, fork_copies=3, recursion_depth=6
        )
        assert tree.depth() <= tree.depth_bound() == 10

    def test_lemma_4_1_on_random_runs(self, running_spec):
        info = analyze_grammar(running_spec)
        for seed in range(5):
            run = small_run(running_spec, 300, seed=seed)
            tree = build_explicit_tree(run, info=info)
            assert tree.depth() <= tree.depth_bound()

    def test_simplified_mode_depth_grows_with_recursion(self, running_spec):
        # without R nodes the tree depth tracks the recursion depth
        _, deep_tree = build_running_tree(
            running_spec, loop_copies=1, fork_copies=1, recursion_depth=8
        )
        run = None
        eng = DerivationEngine(running_spec)
        eng.begin()
        simplified = ExplicitParseTree(running_spec, r_mode="simplified")
        simplified.begin(eng.derivation.start_instance)
        loop_vid = next(iter(eng.pending))
        simplified.apply_step(eng.expand(loop_vid, "L#0", copies=1))
        fork_vid = next(v for v, h in eng.pending.items() if h == "F")
        simplified.apply_step(eng.expand(fork_vid, "F#0", copies=1))
        remaining = 8
        while eng.pending:
            v = min(eng.pending)
            head = eng.pending[v]
            if head == "A":
                step = eng.expand(v, "A#0" if remaining > 0 else "A#1")
                remaining -= 1
            elif head == "B":
                step = eng.expand(v, "B#0")
            else:
                step = eng.expand(v, "C#0")
            simplified.apply_step(step)
        assert simplified.depth() > deep_tree.depth_bound() - 4
        assert simplified.depth() > deep_tree.depth()


class TestModes:
    def test_linear_mode_rejects_nonlinear_grammar(self):
        spec = theorem1_grammar()
        with pytest.raises(LabelingError):
            ExplicitParseTree(spec, r_mode="linear")

    def test_one_r_mode_accepts_nonlinear(self):
        spec = theorem1_grammar()
        ExplicitParseTree(spec, r_mode="one_r")

    def test_unknown_mode_rejected(self, running_spec):
        with pytest.raises(LabelingError):
            ExplicitParseTree(running_spec, r_mode="bogus")

    def test_nonlinear_synthetic_one_r_builds(self):
        spec = synthetic_spec(10, 5, linear=False)
        run = small_run(spec, 150, seed=3)
        tree = build_explicit_tree(run, r_mode="one_r")
        assert tree.node_count > 1


class TestStepOrdering:
    def test_step_before_begin_rejected(self, running_spec):
        tree = ExplicitParseTree(running_spec)
        eng = DerivationEngine(running_spec)
        eng.begin()
        loop_vid = next(iter(eng.pending))
        step = eng.expand(loop_vid, "L#0")
        with pytest.raises(DerivationError):
            tree.apply_step(step)

    def test_nodes_returned_in_creation_order(self, running_spec):
        eng = DerivationEngine(running_spec)
        eng.begin()
        tree = ExplicitParseTree(running_spec)
        tree.begin(eng.derivation.start_instance)
        loop_vid = next(iter(eng.pending))
        nodes = tree.apply_step(eng.expand(loop_vid, "L#0", copies=2))
        assert nodes[0].kind is NodeKind.L
        assert [n.kind for n in nodes[1:]] == [NodeKind.N, NodeKind.N]
        assert nodes[1].parent is nodes[0]


class TestLca:
    def test_lca_basics(self, running_spec):
        run, tree = build_running_tree(running_spec, loop_copies=2)
        (l_node,) = [n for n in tree.nodes() if n.kind is NodeKind.L]
        c1, c2 = l_node.children[0], l_node.children[1]
        assert tree.lca(c1, c2) is l_node
        assert tree.lca(c1, tree.root) is tree.root
        assert tree.lca(c1, c1) is c1
