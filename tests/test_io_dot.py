"""Tests for DOT export."""

from __future__ import annotations

from repro.io.dot import parse_tree_to_dot, run_to_dot, specification_to_dot
from repro.parsetree.explicit import build_explicit_tree

from tests.conftest import small_run


class TestSpecificationDot:
    def test_contains_all_graphs(self, running_spec):
        dot = specification_to_dot(running_spec)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for key in running_spec.graph_keys():
            assert key in dot

    def test_composites_boxed(self, running_spec):
        dot = specification_to_dot(running_spec)
        assert "shape=box" in dot        # composite modules
        assert "shape=ellipse" in dot    # atomic modules
        assert "shape=doubleoctagon" in dot  # loop/fork modules

    def test_balanced_braces(self, bioaid_spec):
        dot = specification_to_dot(bioaid_spec)
        assert dot.count("{") == dot.count("}")


class TestRunDot:
    def test_all_vertices_and_edges_present(self, running_spec):
        run = small_run(running_spec, 60, seed=1)
        dot = run_to_dot(run.graph)
        for v in run.graph.vertices():
            assert f"v{v} [" in dot
        assert dot.count("->") == run.graph.edge_count()

    def test_highlighting(self, running_spec):
        run = small_run(running_spec, 60, seed=2)
        path = run.graph.topological_order()[:3]
        dot = run_to_dot(run.graph, highlight=path)
        assert "fillcolor" in dot
        assert "penwidth" in dot or len(path) < 2


class TestParseTreeDot:
    def test_special_nodes_shaped(self, running_spec):
        run = small_run(running_spec, 120, seed=3)
        tree = build_explicit_tree(run)
        dot = parse_tree_to_dot(tree)
        assert "shape=circle" in dot or "shape=diamond" in dot
        assert dot.count("{") == dot.count("}")

    def test_edge_count_matches_tree(self, running_spec):
        run = small_run(running_spec, 80, seed=4)
        tree = build_explicit_tree(run)
        dot = parse_tree_to_dot(tree)
        assert dot.count("->") == tree.node_count - 1
