"""Tests for the DRL derivation-based scheme (Algorithms 1-4)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.datasets import fig12_path_grammar, synthetic_spec, theorem1_grammar
from repro.errors import LabelingError
from repro.graphs.reachability import reaches
from repro.labeling.drl import (
    DRL,
    Entry,
    SkeletonRef,
    avg_label_bits,
    max_label_bits,
)
from repro.parsetree.explicit import NodeKind
from repro.workflow.grammar import analyze_grammar

from tests.conftest import assert_labels_correct, small_run
from tests.test_parsetree_explicit import build_running_tree


class TestCorrectnessRunningExample:
    def test_all_pairs_small_run(self, running_spec):
        run, _ = build_running_tree(
            running_spec, loop_copies=2, fork_copies=2, recursion_depth=2
        )
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        assert_labels_correct(run.graph, labels, scheme.query)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_runs_sampled_pairs(self, running_spec, seed):
        run = small_run(running_spec, 250, seed=seed)
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        assert_labels_correct(
            run.graph, labels, scheme.query, sample=4000, rng=random.Random(seed)
        )

    def test_bfs_skeleton_gives_same_answers(self, running_spec):
        run = small_run(running_spec, 150, seed=5)
        tcl = DRL(running_spec, skeleton="tcl")
        bfs = DRL(running_spec, skeleton="bfs")
        labels_tcl = tcl.label_derivation(run)
        labels_bfs = bfs.label_derivation(run)
        vs = sorted(run.graph.vertices())
        for a, b in itertools.product(vs[:40], vs[:40]):
            assert tcl.query(labels_tcl[a], labels_tcl[b]) == bfs.query(
                labels_bfs[a], labels_bfs[b]
            )

    def test_reflexive(self, running_spec):
        run = small_run(running_spec, 60, seed=6)
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        for v in run.graph.vertices():
            assert scheme.query(labels[v], labels[v])


class TestCorrectnessOtherSpecs:
    def test_bioaid(self, bioaid_spec):
        run = small_run(bioaid_spec, 300, seed=7)
        scheme = DRL(bioaid_spec)
        labels = scheme.label_derivation(run)
        assert_labels_correct(
            run.graph, labels, scheme.query, sample=5000, rng=random.Random(7)
        )

    def test_synthetic_linear(self, synthetic_linear_spec):
        run = small_run(synthetic_linear_spec, 300, seed=8)
        scheme = DRL(synthetic_linear_spec)
        labels = scheme.label_derivation(run)
        assert_labels_correct(
            run.graph, labels, scheme.query, sample=5000, rng=random.Random(8)
        )

    @pytest.mark.parametrize("r_mode", ["one_r", "simplified"])
    def test_nonlinear_theorem1(self, theorem1_spec, r_mode):
        run = small_run(theorem1_spec, 200, seed=9)
        scheme = DRL(theorem1_spec, r_mode=r_mode)
        labels = scheme.label_derivation(run)
        assert_labels_correct(
            run.graph, labels, scheme.query, sample=5000, rng=random.Random(9)
        )

    @pytest.mark.parametrize("r_mode", ["one_r", "simplified"])
    def test_nonlinear_fig12(self, r_mode):
        spec = fig12_path_grammar()
        run = small_run(spec, 150, seed=10)
        scheme = DRL(spec, r_mode=r_mode)
        labels = scheme.label_derivation(run)
        assert_labels_correct(run.graph, labels, scheme.query)

    def test_nonlinear_synthetic(self):
        spec = synthetic_spec(10, 5, linear=False)
        run = small_run(spec, 250, seed=11)
        scheme = DRL(spec, r_mode="one_r")
        labels = scheme.label_derivation(run)
        assert_labels_correct(
            run.graph, labels, scheme.query, sample=5000, rng=random.Random(11)
        )


class TestDynamicBehaviour:
    def test_labels_final_at_every_step(self, running_spec):
        """Definition 9: labels assigned at step i never change later."""
        run = small_run(running_spec, 150, seed=12)
        scheme = DRL(running_spec)
        labeler = scheme.labeler()
        labeler.begin(run.start_instance)
        snapshots = dict(labeler.labels)
        for step in run.steps:
            labeler.apply_step(step)
            for vid, label in snapshots.items():
                assert labeler.labels[vid] == label
            snapshots = dict(labeler.labels)

    def test_intermediate_queries_correct(self, running_spec):
        """Labels answer queries correctly on each intermediate graph."""
        from repro.workflow.derivation import replay_prefix

        run = small_run(running_spec, 80, seed=13)
        scheme = DRL(running_spec)
        labeler = scheme.labeler()
        labeler.begin(run.start_instance)
        for upto, step in enumerate(run.steps, start=1):
            labeler.apply_step(step)
            if upto % 7 != 0:  # keep the test quick
                continue
            graph = replay_prefix(running_spec, run, upto)
            vs = sorted(graph.vertices())
            rng = random.Random(upto)
            for _ in range(300):
                a, b = rng.choice(vs), rng.choice(vs)
                assert scheme.query(
                    labeler.labels[a], labeler.labels[b]
                ) == reaches(graph, a, b)

    def test_unlabeled_vertex_lookup_rejected(self, running_spec):
        scheme = DRL(running_spec)
        labeler = scheme.labeler()
        with pytest.raises(LabelingError):
            labeler.label(0)


class TestLabelStructure:
    def test_label_entries_follow_algorithm_1(self, running_spec):
        run, tree = build_running_tree(
            running_spec, loop_copies=2, fork_copies=2, recursion_depth=1
        )
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        for v in run.graph.vertices():
            label = labels[v]
            # first entry: the root (index 0, non-special, g0 skeleton)
            assert label[0].index == 0
            assert label[0].kind is NodeKind.N
            assert label[0].skl.key == "g0"
            # last entry: the vertex's own context entry
            assert label[-1].kind is NodeKind.N
            assert label[-1].skl is not None
            # special entries carry no skeleton pointers
            for entry in label:
                if entry.kind is not NodeKind.N:
                    assert entry.skl is None
                    assert entry.rec1 is None

    def test_rec_flags_only_in_recursion_chains(self, running_spec):
        run, _ = build_running_tree(
            running_spec, loop_copies=1, fork_copies=1, recursion_depth=2
        )
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        keys_with_recursion = {"A#0", "C#0"}
        for label in labels.values():
            for entry in label:
                if entry.rec1 is not None:
                    assert entry.kind is NodeKind.N
                    assert entry.skl.key in keys_with_recursion

    def test_labels_unique_per_vertex(self, running_spec):
        run = small_run(running_spec, 200, seed=14)
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(run)
        final = [labels[v] for v in run.graph.vertices()]
        assert len(set(final)) == len(final)

    def test_query_rejects_foreign_labels(self, running_spec):
        scheme = DRL(running_spec)
        bogus_a = (Entry(0, NodeKind.N, SkeletonRef("g0", 0)),)
        bogus_b = (Entry(1, NodeKind.N, SkeletonRef("g0", 0)),)
        with pytest.raises(LabelingError):
            scheme.query(bogus_a, bogus_b)


class TestTheorem3Bounds:
    def test_logarithmic_label_length(self, running_spec):
        """Theorem 3 upper bound: |label| <= d_t (log theta_t + log n_G + 4)."""
        from repro.labeling.bits import pointer_bits, uint_bits
        from repro.parsetree.explicit import build_explicit_tree

        info = analyze_grammar(running_spec)
        for seed, size in [(1, 100), (2, 400), (3, 1000)]:
            run = small_run(running_spec, size, seed=seed)
            scheme = DRL(running_spec)
            labels = scheme.label_derivation(run)
            tree = build_explicit_tree(run, info=info)
            depth = tree.depth() + 1  # entries = path node count
            theta = max(tree.max_outdegree, 2)
            bound = depth * (
                uint_bits(theta)
                + pointer_bits(running_spec.max_graph_size)
                + 4
            )
            measured = max_label_bits(scheme, labels)
            assert measured <= bound

    def test_label_length_grows_logarithmically(self, running_spec):
        scheme = DRL(running_spec)
        sizes = [100, 400, 1600]
        maxima = []
        for size in sizes:
            run = small_run(running_spec, size, seed=size)
            labels = scheme.label_derivation(run)
            maxima.append(max_label_bits(scheme, labels))
        # 16x size increase must cost far less than 16x bits
        assert maxima[-1] <= maxima[0] + 40
        assert avg_label_bits(scheme, scheme.label_derivation(
            small_run(running_spec, 100, seed=100)
        )) > 0

    def test_empty_run_reports_labeling_error(self, running_spec):
        """No labeled vertices: a clear error, not ZeroDivision/ValueError."""
        scheme = DRL(running_spec)
        with pytest.raises(LabelingError, match="no labeled vertices"):
            avg_label_bits(scheme, {})
        with pytest.raises(LabelingError, match="no labeled vertices"):
            max_label_bits(scheme, {})


class TestEntryInterning:
    """Equal entries are the same object; reflexive probes are O(1)."""

    def test_factory_interns_entries_and_refs(self, running_spec):
        run = small_run(running_spec, 200, seed=9)
        labeler = DRL(running_spec).labeler()
        labeler.begin(run.start_instance)
        for step in run.steps:
            labeler.apply_step(step)
        seen = {}
        refs = {}
        for label in labeler.labels.values():
            for entry in label:
                key = (entry.index, entry.kind, entry.skl)
                assert seen.setdefault(key, entry) is entry
                if entry.skl is not None:
                    ref_key = (entry.skl.key, entry.skl.vertex)
                    assert refs.setdefault(ref_key, entry.skl) is entry.skl

    def test_identity_first_reflexive_query(self, running_spec):
        scheme = DRL(running_spec)
        labels = scheme.label_derivation(small_run(running_spec, 80, seed=4))
        for label in labels.values():
            assert scheme.query(label, label)
            # a structurally equal copy (not the same object: tuple()
            # of a tuple returns the tuple itself, so rebuild from a
            # list) still answers True through the equality fallback
            copy = tuple(list(label))
            assert copy is not label
            assert scheme.query(label, copy)
