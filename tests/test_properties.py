"""Property-based tests (hypothesis) on the core invariants.

Each property draws a random grammar shape from the generalized Figure 13
family, derives a random run and checks an end-to-end invariant:
label-based answers equal BFS ground truth, execution-based labels equal
derivation-based ones, the Lemma 4.1 depth bound holds, and label
serialization round-trips.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import layered_spec
from repro.graphs.random_graphs import random_two_terminal_dag
from repro.graphs.reachability import reaches
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.labeling.naive_dynamic import NaiveDynamicScheme
from repro.labeling.serialize import LabelCodec
from repro.labeling.skl import SKL
from repro.parsetree.explicit import build_explicit_tree
from repro.workflow.derivation import DerivationPolicy, random_derivation
from repro.workflow.execution import execution_from_derivation
from repro.workflow.grammar import analyze_grammar

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

level_kinds = st.lists(
    st.sampled_from(["plain", "loop", "fork"]), min_size=1, max_size=3
)

spec_params = st.fixed_dictionaries(
    {
        "kinds": level_kinds,
        "sub_size": st.integers(min_value=5, max_value=9),
        "recursion": st.sampled_from(["none", "linear", "parallel"]),
        "seed": st.integers(min_value=0, max_value=10_000),
        "alt_impls": st.integers(min_value=1, max_value=3),
    }
)

run_seeds = st.integers(min_value=0, max_value=10_000)

relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def make_spec_and_run(params, run_seed, target=120):
    spec = layered_spec(**params)
    policy = DerivationPolicy(rng=random.Random(run_seed), target_size=target)
    info = analyze_grammar(spec)
    return spec, info, random_derivation(spec, policy, info=info)


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


@relaxed
@given(params=spec_params, run_seed=run_seeds)
def test_drl_matches_ground_truth(params, run_seed):
    """Every DRL answer equals BFS reachability on the run graph."""
    spec, info, run = make_spec_and_run(params, run_seed)
    scheme = DRL(spec, info=info)
    labels = scheme.label_derivation(run)
    g = run.graph
    vs = sorted(g.vertices())
    rng = random.Random(run_seed)
    for _ in range(600):
        a, b = rng.choice(vs), rng.choice(vs)
        assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)


@relaxed
@given(params=spec_params, run_seed=run_seeds)
def test_execution_equals_derivation_labels(params, run_seed):
    """Section 5.3: logged execution labeling reproduces derivation labels."""
    spec, info, run = make_spec_and_run(params, run_seed)
    scheme = DRL(spec, info=info)
    derivation_labels = scheme.label_derivation(run)
    labeler = DRLExecutionLabeler(scheme, mode="logged")
    execution_labels = labeler.run(execution_from_derivation(run))
    assert execution_labels == {
        v: derivation_labels[v] for v in execution_labels
    }


@relaxed
@given(params=spec_params, run_seed=run_seeds)
def test_random_order_execution_correct(params, run_seed):
    """Random topological insertion orders still answer correctly."""
    spec, info, run = make_spec_and_run(params, run_seed)
    scheme = DRL(spec, info=info)
    exe = execution_from_derivation(run, random.Random(run_seed + 1))
    labels = DRLExecutionLabeler(scheme, mode="logged").run(exe)
    g = run.graph
    vs = sorted(g.vertices())
    rng = random.Random(run_seed)
    for _ in range(400):
        a, b = rng.choice(vs), rng.choice(vs)
        assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)


@relaxed
@given(params=spec_params, run_seed=run_seeds)
def test_depth_bound_for_linear_grammars(params, run_seed):
    """Lemma 4.1: explicit parse tree depth <= 2 |composites|."""
    spec, info, run = make_spec_and_run(params, run_seed)
    if not info.is_linear:
        return  # the bound is only claimed for linear recursive grammars
    tree = build_explicit_tree(run, info=info)
    assert tree.depth() <= tree.depth_bound()


@relaxed
@given(params=spec_params, run_seed=run_seeds)
def test_label_serialization_round_trips(params, run_seed):
    """decode(encode(label)) == label and size matches the bit count."""
    spec, info, run = make_spec_and_run(params, run_seed, target=60)
    scheme = DRL(spec, info=info)
    labels = scheme.label_derivation(run)
    codec = LabelCodec(spec)
    for label in labels.values():
        payload, bits = codec.encode(label)
        assert codec.decode(payload, bits) == label
        assert len(payload) * 8 >= bits


@relaxed
@given(
    size=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_naive_scheme_on_random_dags(size, seed):
    """The Section 3.2 scheme is correct on arbitrary DAG executions."""
    rng = random.Random(seed)
    g = random_two_terminal_dag(size, rng).dag
    scheme = NaiveDynamicScheme()
    for v in g.topological_order():
        scheme.insert(v, preds=g.predecessors(v))
    vs = sorted(g.vertices())
    for _ in range(300):
        a, b = rng.choice(vs), rng.choice(vs)
        assert scheme.query(scheme.label(a), scheme.label(b)) == reaches(g, a, b)


@relaxed
@given(
    kinds=st.lists(st.sampled_from(["plain", "loop", "fork"]), min_size=1, max_size=3),
    sub_size=st.integers(min_value=5, max_value=9),
    spec_seed=st.integers(min_value=0, max_value=10_000),
    run_seed=run_seeds,
)
def test_skl_matches_ground_truth(kinds, sub_size, spec_seed, run_seed):
    """The static SKL baseline is correct on non-recursive runs."""
    spec = layered_spec(
        kinds=kinds, sub_size=sub_size, recursion="none", seed=spec_seed
    )
    info = analyze_grammar(spec)
    policy = DerivationPolicy(rng=random.Random(run_seed), target_size=100)
    run = random_derivation(spec, policy, info=info)
    skl = SKL(spec, skeleton="tcl", info=info)
    labels = skl.label_run(run)
    g = run.graph
    vs = sorted(g.vertices())
    rng = random.Random(run_seed)
    for _ in range(500):
        a, b = rng.choice(vs), rng.choice(vs)
        assert skl.query(labels[a], labels[b]) == reaches(g, a, b)


@relaxed
@given(params=spec_params)
def test_normalization_always_repairs_conditions(params):
    """normalize() yields a spec satisfying the Section 5.3 conditions
    with the grammar class preserved."""
    from repro.workflow.normalize import normalize_specification
    from repro.workflow.validation import naming_condition_violations

    spec = layered_spec(**params)
    normalized, _ = normalize_specification(spec)
    assert naming_condition_violations(normalized) == []
    before = analyze_grammar(spec)
    after = analyze_grammar(normalized)
    assert before.grammar_class is after.grammar_class


@relaxed
@given(params=spec_params, run_seed=run_seeds)
def test_general_dag_indexes_agree_with_drl(params, run_seed):
    """Chain decomposition and GRAIL answer exactly like DRL on runs."""
    from repro.labeling.chains import ChainIndex
    from repro.labeling.grail import GrailIndex

    spec, info, run = make_spec_and_run(params, run_seed, target=80)
    scheme = DRL(spec, info=info)
    labels = scheme.label_derivation(run)
    graph = run.graph
    chains = ChainIndex(graph)
    grail = GrailIndex(graph, traversals=2, rng=random.Random(run_seed))
    vs = sorted(graph.vertices())
    rng = random.Random(run_seed)
    for _ in range(300):
        a, b = rng.choice(vs), rng.choice(vs)
        expected = scheme.query(labels[a], labels[b])
        assert chains.reaches(a, b) == expected
        assert grail.reaches(a, b) == expected


@relaxed
@given(params=spec_params, run_seed=run_seeds)
def test_io_round_trip_preserves_labels(params, run_seed):
    """Persisting the spec + execution + labels and reloading them
    reproduces identical query answers."""
    from repro.io import (
        execution_from_json,
        execution_to_json,
        specification_from_json,
        specification_to_json,
    )

    spec, info, run = make_spec_and_run(params, run_seed, target=60)
    reloaded_spec = specification_from_json(specification_to_json(spec))
    exe = execution_from_derivation(run)
    reloaded_events = execution_from_json(
        execution_to_json(exe.insertions, spec.name)
    )
    scheme = DRL(spec, info=info)
    original = DRLExecutionLabeler(scheme, mode="logged").run(exe)
    scheme2 = DRL(reloaded_spec)
    labeler2 = DRLExecutionLabeler(scheme2, mode="logged")
    for ins in reloaded_events:
        labeler2.insert(ins)
    vs = sorted(original)
    rng = random.Random(run_seed)
    for _ in range(200):
        a, b = rng.choice(vs), rng.choice(vs)
        assert scheme.query(original[a], original[b]) == scheme2.query(
            labeler2.label(a), labeler2.label(b)
        )


@relaxed
@given(params=spec_params, run_seed=run_seeds)
def test_labels_are_dynamic_never_rewritten(params, run_seed):
    """Labels assigned at any step survive all later steps unchanged."""
    spec, info, run = make_spec_and_run(params, run_seed, target=80)
    scheme = DRL(spec, info=info)
    labeler = scheme.labeler()
    labeler.begin(run.start_instance)
    snapshot = dict(labeler.labels)
    for step in run.steps:
        labeler.apply_step(step)
        for vid, label in snapshot.items():
            assert labeler.labels[vid] == label
        snapshot = dict(labeler.labels)
