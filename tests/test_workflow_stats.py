"""Tests for run statistics."""

from __future__ import annotations

from repro.workflow.stats import run_stats

from tests.conftest import small_run
from tests.test_parsetree_explicit import build_running_tree


class TestRunStats:
    def test_basic_counts(self, running_spec):
        run = small_run(running_spec, 150, seed=1)
        stats = run_stats(run)
        assert stats.run_size == run.run_size()
        assert stats.edge_count == run.graph.edge_count()
        assert sum(stats.module_counts.values()) == stats.run_size

    def test_loop_and_fork_activations(self, running_spec):
        run, tree = build_running_tree(
            running_spec, loop_copies=3, fork_copies=2, recursion_depth=1
        )
        stats = run_stats(run, tree=tree)
        assert stats.loop_iterations["L"] == [3]
        # one fork activation per loop copy, each of width 2
        assert stats.fork_widths["F"] == [2, 2, 2]

    def test_recursion_chain_lengths(self, running_spec):
        run, tree = build_running_tree(
            running_spec, loop_copies=1, fork_copies=1, recursion_depth=3
        )
        stats = run_stats(run, tree=tree)
        assert stats.recursion_chain_lengths
        assert max(stats.recursion_chain_lengths) >= 3

    def test_tree_depth_bound(self, running_spec):
        run = small_run(running_spec, 200, seed=2)
        stats = run_stats(run)
        assert stats.tree_depth <= stats.tree_depth_bound

    def test_summary_mentions_key_facts(self, running_spec):
        run, tree = build_running_tree(running_spec, loop_copies=2)
        stats = run_stats(run, tree=tree)
        text = stats.summary()
        assert "run:" in text
        assert "parse tree:" in text
        assert "loop L" in text
        assert "top modules" in text

    def test_works_on_bioaid(self, bioaid_spec):
        run = small_run(bioaid_spec, 300, seed=3)
        stats = run_stats(run)
        assert stats.run_size > 100
        assert stats.summary()


class TestRenderTree:
    def test_render_contains_special_nodes(self, running_spec):
        from repro.parsetree.render import render_tree

        _, tree = build_running_tree(
            running_spec, loop_copies=2, fork_copies=2, recursion_depth=1
        )
        art = render_tree(tree)
        assert "<L>" in art
        assert "<F>" in art
        assert "<R>" in art
        assert "g0" in art

    def test_render_truncates_depth(self, running_spec):
        from repro.parsetree.render import render_tree

        _, tree = build_running_tree(running_spec, loop_copies=2)
        art = render_tree(tree, max_depth=1)
        assert "child(ren)" in art

    def test_render_empty_tree(self, running_spec):
        from repro.parsetree.explicit import ExplicitParseTree
        from repro.parsetree.render import render_tree

        assert "empty" in render_tree(ExplicitParseTree(running_spec))
