"""Tests for the interprocedural flow analysis and its four rules.

Covers the call-graph builder on miniature fixture trees (diamond,
recursion, unresolved dynamic dispatch), the locks-held dataflow, the
seeded deadlock-cycle detection, the blocking-under-lock and
exception-escape and resource-leak rules, SARIF emission, the
findings baseline, and the real-tree regression pins for the two
documented suppression sites.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import ALL_CHECKERS, lint
from repro.analysis.baseline import (
    apply_baseline,
    compute_fingerprints,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import ParseCache, Project, iter_python_files
from repro.analysis.flow import FlowAnalysis, flow_for
from repro.analysis.sarif import report_to_sarif, validate_sarif

REPO = Path(__file__).resolve().parents[1]

FLOW_RULE_IDS = [
    "deadlock-cycle",
    "blocking-under-lock",
    "exception-escape",
    "resource-leak",
]


def build_flow(tmp_path: Path, files) -> FlowAnalysis:
    """Write a fixture tree and build its FlowAnalysis directly."""
    for rel, code in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code), encoding="utf-8")
    cache = ParseCache()
    sources = []
    for path in iter_python_files([tmp_path]):
        source, failure = cache.parse(path)
        assert failure is None, failure
        sources.append(source)
    return FlowAnalysis(Project(sources, cache=cache))


def lint_tree(tmp_path: Path, files, rules=None):
    for rel, code in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code), encoding="utf-8")
    return lint([tmp_path], rules=rules or FLOW_RULE_IDS)


# ---------------------------------------------------------------------------
# call-graph builder: miniature trees
# ---------------------------------------------------------------------------


def test_call_graph_diamond(tmp_path):
    analysis = build_flow(tmp_path, {"diamond.py": """
        def bottom():
            return 1

        def left():
            return bottom()

        def right():
            return bottom()

        def top():
            return left() + right()
    """})
    top_targets = {
        target
        for site in analysis.call_sites["diamond.top"]
        for target in site.targets
    }
    assert top_targets == {"diamond.left", "diamond.right"}
    for side in ("left", "right"):
        targets = {
            target
            for site in analysis.call_sites[f"diamond.{side}"]
            for target in site.targets
        }
        assert targets == {"diamond.bottom"}


def test_locks_propagate_through_diamond(tmp_path):
    analysis = build_flow(tmp_path, {"diamond.py": """
        import threading

        GUARD_LOCK = threading.Lock()

        def bottom():
            return 1

        def left():
            return bottom()

        def top():
            with GUARD_LOCK:
                return left()
    """})
    held = analysis.entry_held["diamond.bottom"]
    assert "GUARD_LOCK" in held
    # the witness path runs top -> left -> bottom
    quals = [hop[0] for hop in held["GUARD_LOCK"]]
    assert quals == ["diamond.top", "diamond.left"]


def test_recursion_terminates_and_finds_self_deadlock(tmp_path):
    report = lint_tree(tmp_path, {"recur.py": """
        import threading

        PING_LOCK = threading.Lock()

        def ping(n):
            with PING_LOCK:
                pong(n)

        def pong(n):
            if n:
                ping(n - 1)
    """}, rules=["deadlock-cycle"])
    # re-entering ping under the non-reentrant lock is a genuine
    # self-deadlock; the fixpoint must terminate and report it
    assert len(report.findings) == 1
    assert "re-acquired" in report.findings[0].message


def test_unresolved_dynamic_dispatch_over_approximates(tmp_path):
    analysis = build_flow(tmp_path, {"dyn.py": """
        def helper(x):
            return x

        class Runner:
            def run(self, obj):
                obj.helper(1)
                obj.totally_unknown(2)
    """})
    sites = analysis.call_sites["dyn.Runner.run"]
    by_dotted = {site.dotted: site for site in sites}
    may = by_dotted["obj.helper"]
    assert may.kind == "may"
    assert may.targets == ("dyn.helper",)
    unknown = by_dotted["obj.totally_unknown"]
    assert unknown.kind == "external"
    assert unknown.targets == ()


def test_callback_registration_resolves_hook_calls(tmp_path):
    analysis = build_flow(tmp_path, {"hooked.py": """
        class Sink:
            def _on_event(self, batch):
                return batch

            def arm(self, session):
                session.on_event = self._on_event

        class Session:
            def fire(self):
                self.on_event([1])
    """})
    sites = analysis.call_sites["hooked.Session.fire"]
    hook = [s for s in sites if s.dotted == "self.on_event"]
    assert hook and hook[0].kind == "hook"
    assert hook[0].targets == ("hooked.Sink._on_event",)


def test_class_hierarchy_dispatch_stays_in_hierarchy(tmp_path):
    analysis = build_flow(tmp_path, {"cha.py": """
        class Base:
            def insert(self, item):
                raise NotImplementedError

        class Impl(Base):
            def insert(self, item):
                return item

        class Unrelated:
            def insert(self, item):
                return -item

        class Holder:
            def __init__(self, scheme: Base):
                self.scheme = scheme

            def add(self, item):
                self.scheme.insert(item)
    """})
    sites = analysis.call_sites["cha.Holder.add"]
    call = [s for s in sites if s.dotted == "self.scheme.insert"][0]
    assert call.kind == "direct"
    assert set(call.targets) == {"cha.Base.insert", "cha.Impl.insert"}


def test_attr_type_inferred_from_constructor_assignment(tmp_path):
    analysis = build_flow(tmp_path, {"attrs.py": """
        import socket

        class Conn:
            def __init__(self):
                self.sock = socket.create_connection(("h", 1))

            def close(self):
                self.sock.close()

        class Other:
            def close(self):
                pass
    """})
    # self.sock types as external, so .close() gets no may-call edges
    sites = analysis.call_sites["attrs.Conn.close"]
    call = [s for s in sites if s.dotted == "self.sock.close"][0]
    assert call.kind == "external"
    assert call.targets == ()


# ---------------------------------------------------------------------------
# deadlock-cycle
# ---------------------------------------------------------------------------

SEEDED_CYCLE = {"locks.py": """
    import threading

    ALPHA_LOCK = threading.Lock()
    BETA_LOCK = threading.Lock()

    def forward():
        with ALPHA_LOCK:
            take_beta()

    def take_beta():
        with BETA_LOCK:
            pass

    def backward():
        with BETA_LOCK:
            take_alpha()

    def take_alpha():
        with ALPHA_LOCK:
            pass
"""}


def test_seeded_lock_cycle_is_found(tmp_path):
    report = lint_tree(tmp_path, SEEDED_CYCLE, rules=["deadlock-cycle"])
    assert report.findings, "the seeded ALPHA/BETA cycle must be found"
    message = report.findings[0].message
    assert "lock-acquisition cycle" in message
    assert "ALPHA_LOCK" in message and "BETA_LOCK" in message
    assert "via" in message  # interprocedural witness paths rendered


def test_consistent_lock_order_is_clean(tmp_path):
    report = lint_tree(tmp_path, {"locks.py": """
        import threading

        ALPHA_LOCK = threading.Lock()
        BETA_LOCK = threading.Lock()

        def one():
            with ALPHA_LOCK:
                with BETA_LOCK:
                    pass

        def two():
            with ALPHA_LOCK:
                with BETA_LOCK:
                    pass
    """})
    assert report.findings == []


def test_clean_tree_passes_all_flow_rules(tmp_path):
    report = lint_tree(tmp_path, {"svc/server.py": """
        class ProtocolError(Exception):
            pass

        def decode_request(line):
            return line

        def error_response(rid, code, message):
            return (rid, code, message)

        def encode_response(response):
            return response

        class Server:
            def handle_line(self, line):
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    return error_response("", 400, str(exc))
                try:
                    return encode_response(self.handle(request))
                except Exception:
                    return error_response("", 500, "internal error")

            def handle(self, request):
                return request
    """})
    assert report.findings == [], [
        f.render() for f in report.findings
    ]


# ---------------------------------------------------------------------------
# blocking-under-lock
# ---------------------------------------------------------------------------

BLOCKING_TREE = {"sess.py": """
    import os
    import threading

    class Session:
        def __init__(self):
            self.lock = threading.Lock()

        def flush(self, handle):
            with self.lock:
                os.fsync(handle.fileno())
"""}


def test_blocking_under_session_lock_is_flagged(tmp_path):
    report = lint_tree(tmp_path, BLOCKING_TREE,
                       rules=["blocking-under-lock"])
    assert len(report.findings) == 1
    message = report.findings[0].message
    assert "fsync" in message and "Session.lock" in message


def test_blocking_under_lock_interprocedural_witness(tmp_path):
    report = lint_tree(tmp_path, {"sess.py": """
        import os
        import threading

        class Session:
            def __init__(self):
                self.lock = threading.Lock()

            def flush(self, wal):
                with self.lock:
                    wal.append_record(b"x")

        class Wal:
            def append_record(self, data):
                os.fsync(1)
    """}, rules=["blocking-under-lock"])
    assert len(report.findings) == 1
    message = report.findings[0].message
    assert "path:" in message and "flush" in message


def test_blocking_suppression_with_reason_is_honoured(tmp_path):
    files = {"sess.py": BLOCKING_TREE["sess.py"].replace(
        "os.fsync(handle.fileno())",
        "os.fsync(handle.fileno())  "
        "# repro: noqa[blocking-under-lock] -- fsync-before-ack",
    )}
    report = lint_tree(tmp_path, files, rules=["blocking-under-lock"])
    assert report.findings == []
    assert len(report.suppressed) == 1
    assert report.suppressed[0]["reason"] == "fsync-before-ack"


def test_blocking_without_watched_lock_is_clean(tmp_path):
    report = lint_tree(tmp_path, {"plain.py": """
        import os
        import threading

        STATS_LOCK = threading.Lock()

        def flush(handle):
            # a plain module lock is not a stripe/session lock
            with STATS_LOCK:
                os.fsync(handle.fileno())
    """}, rules=["blocking-under-lock"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# exception-escape
# ---------------------------------------------------------------------------


def test_unprotected_dispatch_in_server_is_flagged(tmp_path):
    report = lint_tree(tmp_path, {"svc/server.py": """
        def decode_request(line):
            return line

        def error_response(rid, code, message):
            return (rid, code, message)

        def encode_response(response):
            return response

        class Server:
            def handle_line(self, line):
                request = decode_request(line)
                return encode_response(self.handle(request))

            def handle(self, request):
                return request
    """}, rules=["exception-escape"])
    messages = [f.message for f in report.findings]
    assert any("decodes a request" in m for m in messages)
    assert any("dispatches" in m for m in messages)


def test_total_callee_satisfies_exception_escape(tmp_path):
    report = lint_tree(tmp_path, {"svc/server.py": """
        class ProtocolError(Exception):
            pass

        def decode_request(line):
            return line

        def error_response(rid, code, message):
            return (rid, code, message)

        class Server:
            def handle_line(self, line):
                try:
                    request = decode_request(line)
                except ProtocolError:
                    return error_response("", 400, "bad line")
                return self.handle(request)

            def handle(self, request):
                try:
                    return request
                except Exception as exc:
                    return error_response("", 500, str(exc))
    """}, rules=["exception-escape"])
    assert report.findings == [], [
        f.render() for f in report.findings
    ]


def test_exception_escape_ignores_other_files(tmp_path):
    report = lint_tree(tmp_path, {"svc/worker.py": """
        def decode_request(line):
            return line

        def run(line):
            request = decode_request(line)
            return request
    """}, rules=["exception-escape"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# resource-leak
# ---------------------------------------------------------------------------


def run_leak_rule(tmp_path, code):
    target = tmp_path / "leak.py"
    target.write_text(textwrap.dedent(code), encoding="utf-8")
    return lint([target], rules=["resource-leak"]).findings


def test_resource_leak_unclosed_socket(tmp_path):
    findings = run_leak_rule(tmp_path, """
        import socket

        def probe(host):
            sock = socket.create_connection((host, 80))
            sock.sendall(b"ping")
    """)
    assert len(findings) == 1
    assert "'sock'" in findings[0].message


def test_resource_leak_bare_open(tmp_path):
    findings = run_leak_rule(tmp_path, """
        def touch(path):
            open(path, "w")
    """)
    assert len(findings) == 1
    assert "leaks immediately" in findings[0].message


def test_resource_leak_clean_variants(tmp_path):
    findings = run_leak_rule(tmp_path, """
        import socket

        def with_block(path):
            with open(path) as handle:
                return handle.read()

        def closed(host):
            sock = socket.create_connection((host, 80))
            sock.close()

        def returned(host):
            sock = socket.create_connection((host, 80))
            return sock

        def handed_off(host, registry):
            sock = socket.create_connection((host, 80))
            registry.adopt(sock)

        def stored(self_like, host):
            sock = socket.create_connection((host, 80))
            self_like.sock = sock
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# real-tree regression pins
# ---------------------------------------------------------------------------


def test_real_tree_pins_the_two_documented_suppressions():
    report = lint([REPO / "src"],
                  rules=["deadlock-cycle", "blocking-under-lock"])
    assert report.findings == [], [
        f.render() for f in report.findings
    ]
    pinned = {(s["rule"], Path(s["file"]).name, bool(s["reason"]))
              for s in report.suppressed}
    # the rules still *detect* both sites: each fires and is converted
    # into a documented suppression, never silently missed
    assert ("deadlock-cycle", "engine.py", True) in pinned
    assert ("blocking-under-lock", "wal.py", True) in pinned


# ---------------------------------------------------------------------------
# DOT export
# ---------------------------------------------------------------------------


def test_to_dot_renders_locks_and_edges(tmp_path):
    analysis = build_flow(tmp_path, SEEDED_CYCLE)
    dot = analysis.to_dot()
    assert dot.startswith("digraph")
    assert "ALPHA_LOCK" in dot and "BETA_LOCK" in dot
    full = analysis.to_dot(full=True)
    assert len(full) >= len(dot)


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------


def test_sarif_round_trip_validates(tmp_path):
    report = lint_tree(tmp_path, SEEDED_CYCLE, rules=["deadlock-cycle"])
    assert report.findings
    document = report_to_sarif(report, ALL_CHECKERS)
    assert validate_sarif(document) == []
    # survives a JSON round trip untouched
    assert validate_sarif(json.loads(json.dumps(document))) == []
    result = document["runs"][0]["results"][0]
    assert result["ruleId"] == "deadlock-cycle"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1


def test_sarif_validator_rejects_broken_documents():
    assert validate_sarif([]) != []
    assert validate_sarif({"version": "9.9", "runs": []}) != []
    broken = {
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": "x", "rules": []}},
            "results": [{"ruleId": "", "message": {},
                         "locations": []}],
        }],
    }
    errors = validate_sarif(broken)
    assert any("ruleId" in e for e in errors)
    assert any("message.text" in e for e in errors)
    assert any("locations" in e for e in errors)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


def test_baseline_round_trip_subtracts_known_findings(tmp_path):
    report = lint_tree(tmp_path, SEEDED_CYCLE, rules=["deadlock-cycle"])
    assert report.findings
    path = tmp_path / "baseline.json"
    count = write_baseline(report, path)
    assert count == len(report.findings)
    fresh = lint([tmp_path], rules=["deadlock-cycle"])
    applied, baselined = apply_baseline(fresh, load_baseline(path))
    assert applied.findings == []
    assert len(baselined) == count
    assert applied.exit_code == 0


def test_baseline_does_not_mask_new_findings(tmp_path):
    report = lint_tree(tmp_path, SEEDED_CYCLE, rules=["deadlock-cycle"])
    path = tmp_path / "baseline.json"
    write_baseline(report, path)
    # a new, unrelated cycle appears in another file: it must not be
    # absorbed by the recorded fingerprints
    (tmp_path / "other.py").write_text(textwrap.dedent("""
        import threading

        GAMMA_LOCK = threading.Lock()
        DELTA_LOCK = threading.Lock()

        def third():
            with GAMMA_LOCK:
                with DELTA_LOCK:
                    pass

        def fourth():
            with DELTA_LOCK:
                with GAMMA_LOCK:
                    pass
        """), encoding="utf-8")
    fresh = lint([tmp_path], rules=["deadlock-cycle"])
    applied, _ = apply_baseline(fresh, load_baseline(path))
    assert applied.findings, "the new cycle must survive the baseline"


def test_fingerprints_disambiguate_identical_lines(tmp_path):
    report = lint_tree(tmp_path, {"leaks.py": """
        import socket

        def one(host):
            sock = socket.create_connection((host, 80))

        def two(host):
            sock = socket.create_connection((host, 80))
    """}, rules=["resource-leak"])
    assert len(report.findings) == 2
    fingerprints = compute_fingerprints(report.findings)
    assert len(set(fingerprints)) == 2


def test_load_baseline_rejects_malformed(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"nope": 1}', encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(path)
    assert load_baseline(tmp_path / "absent.json") is None


# ---------------------------------------------------------------------------
# satellites: parse cache, single-file anchoring, --jobs, CLI flags
# ---------------------------------------------------------------------------


def test_parse_cache_parses_each_file_once(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    cache = ParseCache()
    first, _ = cache.parse(target)
    second, _ = cache.parse(target)
    assert first is second
    assert len(cache) == 1


def test_iter_python_files_sorted_and_deduped(tmp_path):
    (tmp_path / "b.py").write_text("", encoding="utf-8")
    (tmp_path / "a.py").write_text("", encoding="utf-8")
    files = iter_python_files([tmp_path, tmp_path / "a.py"])
    names = [f.name for f in files]
    assert names == ["a.py", "b.py"]


def test_single_file_inside_anchored_tree_activates_project_rules():
    # regression: a bare file path must work, and because engine.py
    # lives inside the anchored service tree the project-wide rules
    # still run with the tree as context -- the documented deadlock
    # suppression site is found, attributed, and suppressed
    engine = REPO / "src" / "repro" / "service" / "engine.py"
    report = lint([engine], rules=["deadlock-cycle"])
    assert report.files == 1
    assert report.findings == []
    assert any(
        s["rule"] == "deadlock-cycle" and
        Path(s["file"]).name == "engine.py"
        for s in report.suppressed
    )


def test_jobs_fanout_matches_serial(tmp_path):
    files = {
        f"pkg/m{i}.py": """
            import socket

            def probe(host):
                sock = socket.create_connection((host, 80))
        """
        for i in range(4)
    }
    for rel, code in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code), encoding="utf-8")
    serial = lint([tmp_path], rules=["resource-leak"], jobs=1)
    fanned = lint([tmp_path], rules=["resource-leak"], jobs=2)
    key = lambda f: (f.file, f.line, f.rule)  # noqa: E731
    assert sorted(map(key, serial.findings)) == \
        sorted(map(key, fanned.findings))
    assert len(serial.findings) == 4


def test_cli_graph_sarif_and_timing(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "locks.py").write_text(
        textwrap.dedent(SEEDED_CYCLE["locks.py"]), encoding="utf-8")
    graph = tmp_path / "out.dot"
    sarif = tmp_path / "out.sarif"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--no-baseline",
         "--rules", "deadlock-cycle", "--graph", str(graph),
         "--sarif", str(sarif), str(tree)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert " in " in proc.stdout.splitlines()[-1]  # timing line
    assert graph.read_text(encoding="utf-8").startswith("digraph")
    document = json.loads(sarif.read_text(encoding="utf-8"))
    assert validate_sarif(document) == []
    assert document["runs"][0]["results"]


def test_cli_update_baseline_then_clean(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "locks.py").write_text(
        textwrap.dedent(SEEDED_CYCLE["locks.py"]), encoding="utf-8")
    baseline = tmp_path / "base.json"
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--baseline",
         str(baseline), "--update-baseline", str(tree)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert baseline.is_file()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--baseline",
         str(baseline), "--json", str(tree)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["baselined"], "baselined findings must be reported"


def test_flow_for_memoises_on_the_project(tmp_path):
    (tmp_path / "m.py").write_text("def f():\n    pass\n",
                                   encoding="utf-8")
    cache = ParseCache()
    source, _ = cache.parse(tmp_path / "m.py")
    project = Project([source], cache=cache)
    assert flow_for(project) is flow_for(project)
