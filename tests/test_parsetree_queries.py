"""Tests for the Lemma 4.2 tree-based reachability oracle."""

from __future__ import annotations

import itertools
import random

from repro.graphs.reachability import reaches
from repro.parsetree.explicit import build_explicit_tree
from repro.parsetree.queries import tree_reaches
from repro.workflow.grammar import analyze_grammar

from tests.conftest import small_run
from tests.test_parsetree_explicit import build_running_tree


class TestTreeReaches:
    def test_matches_bfs_on_hand_built_run(self, running_spec):
        run, tree = build_running_tree(
            running_spec, loop_copies=2, fork_copies=2, recursion_depth=2
        )
        g = run.graph
        for a, b in itertools.product(sorted(g.vertices()), repeat=2):
            assert tree_reaches(tree, running_spec, a, b) == reaches(g, a, b)

    def test_matches_bfs_on_random_runs(self, running_spec):
        info = analyze_grammar(running_spec)
        for seed in range(3):
            run = small_run(running_spec, 150, seed=seed)
            tree = build_explicit_tree(run, info=info)
            g = run.graph
            vs = sorted(g.vertices())
            rng = random.Random(seed)
            for _ in range(3000):
                a, b = rng.choice(vs), rng.choice(vs)
                assert tree_reaches(tree, running_spec, a, b) == reaches(g, a, b)

    def test_reflexive(self, running_spec):
        run, tree = build_running_tree(running_spec)
        v = next(iter(run.graph.vertices()))
        assert tree_reaches(tree, running_spec, v, v)

    def test_loop_case(self, running_spec):
        # vertices in different loop copies: earlier copy reaches later
        run, tree = build_running_tree(running_spec, loop_copies=3)
        template = running_spec.graph("L#0")
        (l_node,) = [
            n
            for n in tree.nodes()
            if n.kind.value == "L"
        ]
        first = l_node.children[0].instance.mapping[template.source]
        last = l_node.children[-1].instance.mapping[template.sink]
        assert tree_reaches(tree, running_spec, first, last)
        assert not tree_reaches(tree, running_spec, last, first)

    def test_fork_case(self, running_spec):
        run, tree = build_running_tree(running_spec, loop_copies=1, fork_copies=3)
        template = running_spec.graph("F#0")
        f_node = next(n for n in tree.nodes() if n.kind.value == "F")
        a = f_node.children[0].instance.mapping[template.source]
        b = f_node.children[1].instance.mapping[template.sink]
        assert not tree_reaches(tree, running_spec, a, b)
        assert not tree_reaches(tree, running_spec, b, a)

    def test_bioaid_consistency(self, bioaid_spec):
        info = analyze_grammar(bioaid_spec)
        run = small_run(bioaid_spec, 200, seed=5)
        tree = build_explicit_tree(run, info=info)
        g = run.graph
        vs = sorted(g.vertices())
        rng = random.Random(6)
        for _ in range(3000):
            a, b = rng.choice(vs), rng.choice(vs)
            assert tree_reaches(tree, bioaid_spec, a, b) == reaches(g, a, b)
