"""Crash-consistency and durability tests (repro.service.wal + fixes).

Covers the durability layer end to end -- WAL append/replay/torn-tail
handling, checkpoint generations with the CURRENT pointer, boot-time
recovery, the background checkpointer, the sync/recover_info protocol
ops -- plus the three hardening fixes that rode along: fsynced
checkpoint staging, restore-validates-before-replay, and the
no-zero-capacity-shard rule in the query engine.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.errors import ServiceError
from repro.graphs.reachability import reaches
from repro.service import (
    Checkpointer,
    DurableStore,
    QueryEngine,
    SessionManager,
    checkpoint_session,
    replay_wal,
    restore_session,
)
from repro.service.protocol import Request, insertions_to_wire
from repro.service.server import ReproService
from repro.service.sessions import Session
from repro.service.wal import WriteAheadLog
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation


def make_execution(spec, size=120, seed=0):
    run = sample_run(spec, size, random.Random(seed))
    return run, execution_from_derivation(run)


@pytest.fixture(scope="module")
def run_and_execution(running_spec):
    return make_execution(running_spec)


def make_session(spec, events=()):
    manager = SessionManager()
    session = manager.create("live", spec)
    if events:
        session.ingest_many(events)
    return manager, session


# ---------------------------------------------------------------------------
# checkpoint staging durability (satellite 1)
# ---------------------------------------------------------------------------


class TestCheckpointDurability:
    def test_durable_checkpoint_fsyncs_files_and_directory(
        self, running_spec, run_and_execution, tmp_path, monkeypatch
    ):
        _, execution = run_and_execution
        _, session = make_session(running_spec, execution.insertions[:30])
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        checkpoint_session(session, tmp_path / "ckpt", durable=True)
        monkeypatch.setattr(os, "fsync", real_fsync)
        # four staged files plus at least the directory itself
        assert len(synced) >= 5

    def test_durable_false_skips_fsync(
        self, running_spec, run_and_execution, tmp_path, monkeypatch
    ):
        _, execution = run_and_execution
        _, session = make_session(running_spec, execution.insertions[:30])
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        checkpoint_session(session, tmp_path / "ckpt", durable=False)
        assert synced == []

    def test_leftover_tmp_files_are_ignored_by_restore(
        self, running_spec, run_and_execution, tmp_path
    ):
        _, execution = run_and_execution
        _, session = make_session(running_spec, execution.insertions[:40])
        path = checkpoint_session(session, tmp_path / "ckpt")
        (path / "manifest.json.tmp").write_text("{ torn garbage")
        (path / "labels.json.tmp").write_text("")
        restored = restore_session(SessionManager(), path)
        assert len(restored) == 40

    def test_crash_mid_stage_keeps_prior_checkpoint(
        self, running_spec, run_and_execution, tmp_path, monkeypatch
    ):
        """A re-checkpoint that dies while staging leaves the previous
        checkpoint fully restorable (staged .tmp files are inert)."""
        import repro.service.checkpoint as checkpoint_module

        _, execution = run_and_execution
        events = execution.insertions
        _, session = make_session(running_spec, events[:40])
        path = checkpoint_session(session, tmp_path / "ckpt")
        session.ingest_many(events[40:80])

        real_dump = checkpoint_module._dump

        def dying_dump(document, target, indent=None):
            if str(target).endswith("manifest.json.tmp"):
                raise OSError("simulated crash while staging")
            return real_dump(document, target, indent=indent)

        monkeypatch.setattr(checkpoint_module, "_dump", dying_dump)
        with pytest.raises(OSError):
            checkpoint_session(session, path)
        monkeypatch.setattr(checkpoint_module, "_dump", real_dump)

        assert list(path.glob("*.tmp"))  # the crash left staging litter
        restored = restore_session(SessionManager(), path)
        assert len(restored) == 40  # the prior generation, intact


# ---------------------------------------------------------------------------
# restore validates before replaying (satellite 2)
# ---------------------------------------------------------------------------


class TestRestoreValidatesFirst:
    @pytest.fixture()
    def checkpoint_dir(self, running_spec, run_and_execution, tmp_path):
        _, execution = run_and_execution
        _, session = make_session(running_spec, execution.insertions[:50])
        return checkpoint_session(session, tmp_path / "ckpt")

    @pytest.fixture()
    def replay_spy(self, monkeypatch):
        calls = []
        real = Session.ingest_many

        def spying(self, insertions):
            calls.append(self.name)
            return real(self, insertions)

        monkeypatch.setattr(Session, "ingest_many", spying)
        return calls

    def test_occupied_name_raises_before_replay(
        self, running_spec, checkpoint_dir, replay_spy
    ):
        manager = SessionManager()
        manager.create("live", running_spec)
        with pytest.raises(ServiceError, match="already exists"):
            restore_session(manager, checkpoint_dir)
        assert replay_spy == []  # no relabeling work was paid

    def test_occupied_override_name_raises_before_replay(
        self, running_spec, checkpoint_dir, replay_spy
    ):
        manager = SessionManager()
        manager.create("copy", running_spec)
        with pytest.raises(ServiceError, match="already exists"):
            restore_session(manager, checkpoint_dir, name="copy")
        assert replay_spy == []

    def test_missing_label_store_fails_before_replay(
        self, checkpoint_dir, replay_spy
    ):
        (checkpoint_dir / "labels.json").unlink()
        with pytest.raises(ServiceError, match="does not exist"):
            restore_session(SessionManager(), checkpoint_dir)
        assert replay_spy == []

    def test_corrupt_label_store_fails_before_replay(
        self, checkpoint_dir, replay_spy
    ):
        (checkpoint_dir / "labels.json").write_text("{ not json")
        with pytest.raises(ServiceError, match="unusable"):
            restore_session(SessionManager(), checkpoint_dir)
        assert replay_spy == []

    def test_scheme_mismatch_fails_before_replay(
        self, checkpoint_dir, replay_spy
    ):
        store = json.loads((checkpoint_dir / "labels.json").read_text())
        store["scheme"] = "naive"
        (checkpoint_dir / "labels.json").write_text(json.dumps(store))
        with pytest.raises(ServiceError, match="scheme"):
            restore_session(SessionManager(), checkpoint_dir)
        assert replay_spy == []


# ---------------------------------------------------------------------------
# no zero-capacity cache shards (satellite 3)
# ---------------------------------------------------------------------------


class TestShardCapacityFloor:
    def test_small_budget_still_caches_on_every_shard(
        self, running_spec, run_and_execution
    ):
        _, execution = run_and_execution
        manager = SessionManager()
        engine = QueryEngine(manager, cache_size=2, shards=4)
        stats = engine.stats()
        assert stats.cache_shard_capacities == (1, 1, 1, 1)
        # whichever shard this session hashes to, repeats must hit
        manager.create("a", running_spec)
        engine.ingest("a", execution.insertions[:30])
        vid = execution.insertions[0].vid
        engine.query("a", vid, vid)
        engine.query("a", vid, vid)
        assert engine.stats().cache_hits >= 1

    def test_zero_budget_disables_all_shards(self, running_spec):
        engine = QueryEngine(SessionManager(), cache_size=0, shards=4)
        assert engine.stats().cache_shard_capacities == (0, 0, 0, 0)

    def test_even_split_unchanged(self):
        engine = QueryEngine(SessionManager(), cache_size=8, shards=4)
        assert engine.stats().cache_shard_capacities == (2, 2, 2, 2)

    def test_capacities_surface_in_stats_dict(self):
        engine = QueryEngine(SessionManager(), cache_size=3, shards=2)
        doc = engine.stats().to_dict()
        assert doc["cache_shard_capacities"] == [2, 1]


# ---------------------------------------------------------------------------
# the write-ahead log file
# ---------------------------------------------------------------------------


class TestWriteAheadLog:
    @pytest.fixture()
    def session(self, running_spec):
        return make_session(running_spec)[1]

    def test_append_replay_round_trip(self, session, tmp_path):
        wal = WriteAheadLog.create(
            tmp_path / "wal.jsonl", session, 0, 0, policy="always"
        )
        wal.append(0, 1, [{"vid": 0}])
        wal.append(1, 2, [{"vid": 1}, {"vid": 2}])
        wal.close()
        replay = replay_wal(tmp_path / "wal.jsonl")
        assert replay.dropped is None
        assert [r.seq for r in replay.records] == [0, 1]
        assert replay.records[1].start == 1
        assert replay.events == 3
        assert replay.header["session"] == "live"

    def test_torn_tail_is_dropped_and_reported(self, session, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog.create(path, session, 0, 0)
        wal.append(0, 1, [{"vid": 0}])
        wal.append(1, 2, [{"vid": 1}])
        wal.close()
        whole = path.read_bytes()
        path.write_bytes(whole[:-7])  # tear the final append
        replay = replay_wal(path)
        assert replay.dropped is not None
        assert [r.seq for r in replay.records] == [0]
        assert replay.next_seq == 1  # the reported resume point

    def test_resume_truncates_the_torn_tail(self, session, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog.create(path, session, 0, 0)
        wal.append(0, 1, [{"vid": 0}])
        wal.append(1, 2, [{"vid": 1}])
        wal.close()
        path.write_bytes(path.read_bytes()[:-7])
        replay = replay_wal(path)
        resumed = WriteAheadLog.resume(path, replay)
        resumed.append(1, 2, [{"vid": 1}])  # re-acknowledged after loss
        resumed.close()
        healed = replay_wal(path)
        assert healed.dropped is None
        assert [r.seq for r in healed.records] == [0, 1]

    def test_seq_gap_drops_the_rest(self, session, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog.create(path, session, 0, 0)
        wal.append(0, 1, [{"vid": 0}])
        wal.close()
        with open(path, "a") as handle:
            handle.write(
                json.dumps(
                    {"seq": 5, "start": 9, "version": 9, "events": []}
                )
                + "\n"
            )
        replay = replay_wal(path)
        assert "seq" in replay.dropped
        assert [r.seq for r in replay.records] == [0]

    def test_unreadable_header_is_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ServiceError, match="not a write-ahead log"):
            replay_wal(path)

    def test_truncate_to_base_keeps_uncovered_records(
        self, session, tmp_path
    ):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog.create(path, session, 0, 0)
        wal.append(0, 1, [{"vid": 0}, {"vid": 1}])
        wal.append(2, 2, [{"vid": 2}])
        wal.append(3, 3, [{"vid": 3}])
        assert wal.truncate_to_base(2, 3) == 1  # first two covered
        wal.append(4, 4, [{"vid": 4}])
        wal.close()
        replay = replay_wal(path)
        assert replay.header["base_vertices"] == 3
        assert [r.start for r in replay.records] == [3, 4]
        assert [r.seq for r in replay.records] == [0, 1]

    def test_fsync_policies_count_unsynced(self, session, tmp_path):
        never = WriteAheadLog.create(
            tmp_path / "never.jsonl", session, 0, 0, policy="never"
        )
        never.append(0, 1, [{"vid": 0}])
        assert never.unsynced == 1
        never.sync()
        assert never.unsynced == 0
        never.close()
        always = WriteAheadLog.create(
            tmp_path / "always.jsonl", session, 0, 0, policy="always"
        )
        always.append(0, 1, [{"vid": 0}])
        assert always.unsynced == 0
        always.close()
        batch = WriteAheadLog.create(
            tmp_path / "batch.jsonl", session, 0, 0,
            policy="batch", batch_records=2,
        )
        batch.append(0, 1, [{"vid": 0}])
        assert batch.unsynced == 1
        batch.append(1, 2, [{"vid": 1}])
        assert batch.unsynced == 0  # the batch threshold fsynced
        batch.close()

    def test_unknown_policy_rejected(self, session, tmp_path):
        with pytest.raises(ServiceError, match="fsync"):
            WriteAheadLog.create(
                tmp_path / "wal.jsonl", session, 0, 0, policy="sometimes"
            )

    def test_failed_append_poisons_the_log(self, session, tmp_path):
        """After one failed append the log must refuse every later one:
        writing past a possibly-torn line would let recovery silently
        drop acknowledged records behind the tear."""
        wal = WriteAheadLog.create(tmp_path / "wal.jsonl", session, 0, 0)
        wal.append(0, 1, [{"vid": 0}])
        wal._handle.close()  # force the next write to fail
        with pytest.raises(ServiceError, match="append failed"):
            wal.append(1, 2, [{"vid": 1}])
        assert wal.failed
        with pytest.raises(ServiceError, match="poisoned"):
            wal.append(2, 3, [{"vid": 2}])
        with pytest.raises(ServiceError, match="poisoned"):
            wal.sync()
        wal.close()  # teardown of a poisoned log must not raise


# ---------------------------------------------------------------------------
# the durable store + recovery
# ---------------------------------------------------------------------------


class TestDurableStoreRecovery:
    def ingest(self, service, name, events):
        response = service.handle(
            Request(
                "ingest",
                {"session": name, "insertions": insertions_to_wire(events)},
            )
        )
        assert response.ok, response.error
        return response.result

    def create(self, service, name, spec="running-example"):
        response = service.handle(
            Request("create_session", {"name": name, "spec": spec})
        )
        assert response.ok, response.error
        return response.result

    def test_recovery_replays_the_wal_tail(
        self, run_and_execution, tmp_path
    ):
        run, execution = run_and_execution
        events = execution.insertions
        service = ReproService(data_dir=tmp_path / "data")
        self.create(service, "s1")
        self.ingest(service, "s1", events[:40])
        # roll a checkpoint, then keep ingesting into the WAL
        assert service.handle(Request("snapshot", {"session": "s1"})).ok
        self.ingest(service, "s1", events[40:70])
        service.close()

        revived = ReproService(data_dir=tmp_path / "data")
        report = revived.store.recovery[0]
        assert report["status"] == "recovered"
        assert report["checkpoint_vertices"] == 40
        assert report["wal_events_replayed"] == 30
        assert report["vertices"] == 70
        vids = [event.vid for event in events[:70]]
        rng = random.Random(3)
        pairs = [[rng.choice(vids), rng.choice(vids)] for _ in range(150)]
        response = revived.handle(
            Request("query_batch", {"session": "s1", "pairs": pairs})
        )
        assert response.ok
        for (a, b), answer in zip(pairs, response.result["answers"]):
            assert answer == reaches(run.graph, a, b)
        # the revived session keeps ingesting where it left off
        self.ingest(revived, "s1", events[70:])
        revived.close()

    def test_torn_wal_tail_recovers_prefix_and_reports(
        self, run_and_execution, tmp_path
    ):
        _, execution = run_and_execution
        events = execution.insertions
        service = ReproService(data_dir=tmp_path / "data")
        self.create(service, "s1")
        self.ingest(service, "s1", events[:20])
        self.ingest(service, "s1", events[20:40])
        service.close()
        wal_path = next((tmp_path / "data").glob("s-*/wal.jsonl"))
        wal_path.write_bytes(wal_path.read_bytes()[:-9])

        revived = ReproService(data_dir=tmp_path / "data")
        report = revived.store.recovery[0]
        assert report["torn_tail"]
        assert report["resume_seq"] == 1
        assert report["vertices"] == 20  # the second batch was torn off
        revived.close()

    def test_closed_sessions_stay_closed(
        self, run_and_execution, tmp_path
    ):
        _, execution = run_and_execution
        service = ReproService(data_dir=tmp_path / "data")
        self.create(service, "s1")
        self.ingest(service, "s1", execution.insertions[:10])
        assert service.handle(Request("close", {"session": "s1"})).ok
        service.close()
        revived = ReproService(data_dir=tmp_path / "data")
        assert revived.manager.names() == []
        assert revived.store.recovery[0]["status"] == "closed"
        # the name is reusable; the closed directory is archived
        self.create(revived, "s1")
        revived.close()
        archived = [
            d.name
            for d in (tmp_path / "data").iterdir()
            if ".closed." in d.name
        ]
        assert archived

    def test_sync_and_recover_info_ops(self, run_and_execution, tmp_path):
        _, execution = run_and_execution
        service = ReproService(
            data_dir=tmp_path / "data", fsync="never"
        )
        self.create(service, "s1")
        self.ingest(service, "s1", execution.insertions[:10])
        info = service.handle(Request("recover_info", {})).result
        assert info["durable"] and info["fsync"] == "never"
        assert info["sessions"]["s1"]["wal_records"] == 1
        assert info["sessions"]["s1"]["wal_unsynced"] == 1
        synced = service.handle(
            Request("sync", {"session": "s1"})
        ).result
        assert synced == {"synced": ["s1"], "fsync": "never"}
        info = service.handle(Request("recover_info", {})).result
        assert info["sessions"]["s1"]["wal_unsynced"] == 0
        response = service.handle(
            Request("sync", {"session": "nope"})
        )
        assert not response.ok and response.code == "no-session"
        service.close()

    def test_ops_without_data_dir(self):
        service = ReproService()
        info = service.handle(Request("recover_info", {})).result
        assert info == {"durable": False}
        response = service.handle(Request("sync", {}))
        assert not response.ok and response.code == "service"
        response = service.handle(Request("snapshot", {"session": "x"}))
        assert not response.ok  # pathless snapshot needs a data dir

    def test_register_refuses_live_leftover_state(
        self, running_spec, tmp_path
    ):
        store = DurableStore(tmp_path / "data")
        _, session = make_session(running_spec)
        store.register(session)
        store.close()
        other = DurableStore(tmp_path / "data")
        fresh = Session("live", running_spec)
        with pytest.raises(ServiceError, match="already exists"):
            other.register(fresh)

    def test_data_dir_is_locked_against_second_process(
        self, running_spec, tmp_path
    ):
        store = DurableStore(tmp_path / "data")
        with pytest.raises(ServiceError, match="locked"):
            DurableStore(tmp_path / "data")
        store.close()
        DurableStore(tmp_path / "data").close()  # free after close

    def test_missing_wal_next_to_complete_checkpoint_rearms(
        self, run_and_execution, tmp_path
    ):
        """A crash between the first checkpoint and the WAL creation
        (inside an unacknowledged create) must not brick the boot: the
        checkpoint is the whole acknowledged state."""
        _, execution = run_and_execution
        service = ReproService(data_dir=tmp_path / "data")
        self.create(service, "s1")
        self.ingest(service, "s1", execution.insertions[:15])
        assert service.handle(Request("snapshot", {"session": "s1"})).ok
        service.close()
        next((tmp_path / "data").glob("s-*/wal.jsonl")).unlink()

        revived = ReproService(data_dir=tmp_path / "data")
        report = revived.store.recovery[0]
        assert report["status"] == "recovered"
        assert report["wal_rearmed"]
        assert report["vertices"] == 15
        # the re-armed WAL accepts new acknowledged ingests
        self.ingest(revived, "s1", execution.insertions[15:25])
        revived.close()
        third = ReproService(data_dir=tmp_path / "data")
        assert third.store.recovery[0]["vertices"] == 25
        third.close()

    def test_failed_create_does_not_squat_the_name(
        self, running_spec, tmp_path, monkeypatch
    ):
        """If arming durability fails, the half-created directory is
        removed so a retry of the same name can succeed."""
        service = ReproService(data_dir=tmp_path / "data")

        def boom(*args, **kwargs):
            raise OSError("disk full while arming the WAL")

        monkeypatch.setattr(WriteAheadLog, "create", boom)
        response = service.handle(
            Request(
                "create_session",
                {"name": "s1", "spec": "running-example"},
            )
        )
        assert not response.ok
        monkeypatch.undo()
        self.create(service, "s1")  # the retry succeeds
        service.close()

    def test_stale_session_instance_cannot_checkpoint(
        self, running_spec, run_and_execution, tmp_path
    ):
        """A roll holding a superseded Session (close + recreate raced
        it) must not write the old state over the successor's."""
        _, execution = run_and_execution
        store = DurableStore(tmp_path / "data")
        manager, old = make_session(running_spec)
        store.register(old)
        old.ingest_many(execution.insertions[:20])
        manager.close("live")
        store.finalize(old)
        fresh = manager.create("live", running_spec)
        store.register(fresh)
        fresh.ingest_many(execution.insertions[:5])
        with pytest.raises(ServiceError, match="superseded"):
            store.checkpoint(old)
        # the successor's WAL still holds its acknowledged batch
        assert store.info()["sessions"]["live"]["wal_events"] == 5
        store.close()

    def test_checkpoint_pending_surfaces_poisoned_wal(
        self, running_spec, run_and_execution, tmp_path
    ):
        _, execution = run_and_execution
        store = DurableStore(tmp_path / "data")
        _, session = make_session(running_spec)
        store.register(session)
        session.ingest_many(execution.insertions[:10])
        store._entries["live"].wal.failed = True  # as a failed append would
        assert store.checkpoint_pending() == []
        assert store.errors and "poisoned" in store.errors[0]
        assert len(store.errors) == 1
        store.checkpoint_pending()  # repeated ticks do not spam
        assert len(store.errors) == 1
        store.close()

    def test_checkpointer_rolls_outstanding_wals(
        self, run_and_execution, running_spec, tmp_path
    ):
        _, execution = run_and_execution
        store = DurableStore(tmp_path / "data")
        manager, session = make_session(running_spec)
        store.register(session)
        session.ingest_many(execution.insertions[:25])
        checkpointer = Checkpointer(store, interval=0.05)
        checkpointer.start()
        deadline = time.monotonic() + 10.0
        try:
            while time.monotonic() < deadline:
                info = store.info()["sessions"]["live"]
                if (
                    info["wal_records"] == 0
                    and info["checkpoint_vertices"] == 25
                ):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("checkpointer never rolled the WAL")
        finally:
            checkpointer.stop()
            store.close()
        # the rolled state recovers without any WAL replay
        revived = SessionManager()
        reports = DurableStore(tmp_path / "data").recover(revived)
        assert reports[0]["checkpoint_vertices"] == 25
        assert reports[0]["wal_events_replayed"] == 0

    def test_failed_batch_prefix_is_still_logged(
        self, running_spec, run_and_execution, tmp_path
    ):
        """The applied prefix of a mid-batch failure is durable: it is
        final in memory, so recovery must reproduce it."""
        from repro.errors import ExecutionError

        _, execution = run_and_execution
        events = execution.insertions
        store = DurableStore(tmp_path / "data")
        manager, session = make_session(running_spec)
        store.register(session)
        poisoned = events[:10] + [events[20]]  # preds not inserted yet
        with pytest.raises((ExecutionError, ServiceError, Exception)):
            session.ingest_many(poisoned)
        store.close()
        revived = SessionManager()
        reports = DurableStore(tmp_path / "data").recover(revived)
        assert reports[0]["vertices"] == 10


# ---------------------------------------------------------------------------
# the crash-recovery loadgen scenario (subprocess SIGKILL)
# ---------------------------------------------------------------------------


class TestCrashRecoveryScenario:
    def test_sigkill_mid_ingest_loses_nothing_acknowledged(self, tmp_path):
        from repro.loadgen import run_crash_recovery

        report = run_crash_recovery(
            data_dir=str(tmp_path / "data"),
            run_size=250,
            chunk=4,
            kill_after=20.0,  # progress-triggered long before this
            queries=150,
            verbose=False,
        )
        assert report.errors == []
        assert report.lost == []
        assert report.wrong_answers == 0
        assert 0 < report.acknowledged
        assert report.recovered_vertices >= report.acknowledged

    def test_cli_lists_the_scenario(self, capsys):
        from repro.cli import main

        assert main(["loadgen", "--list"]) == 0
        out = capsys.readouterr().out
        assert "crash-recovery" in out
