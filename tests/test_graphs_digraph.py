"""Unit tests for the core DAG container."""

from __future__ import annotations

import pytest

from repro.errors import CycleError, GraphError
from repro.graphs.digraph import (
    IdAllocator,
    NamedDAG,
    find_unique,
    induced_subgraph,
    merge_disjoint,
)


def diamond() -> NamedDAG:
    """a -> b, a -> c, b -> d, c -> d."""
    g = NamedDAG()
    for vid, name in enumerate("abcd"):
        g.add_vertex(vid, name)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 3)
    return g


class TestIdAllocator:
    def test_fresh_ids_are_sequential_and_unique(self):
        alloc = IdAllocator()
        ids = [alloc.fresh() for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_fresh_many(self):
        alloc = IdAllocator(start=10)
        assert alloc.fresh_many(3) == [10, 11, 12]
        assert alloc.high_water_mark == 13

    def test_custom_start(self):
        assert IdAllocator(start=100).fresh() == 100


class TestConstruction:
    def test_add_vertex_and_name(self):
        g = NamedDAG()
        g.add_vertex(7, "mod")
        assert 7 in g
        assert g.name(7) == "mod"

    def test_duplicate_vertex_rejected(self):
        g = NamedDAG()
        g.add_vertex(1, "a")
        with pytest.raises(GraphError):
            g.add_vertex(1, "b")

    def test_self_loop_rejected(self):
        g = NamedDAG()
        g.add_vertex(1, "a")
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_edge_endpoints_must_exist(self):
        g = NamedDAG()
        g.add_vertex(1, "a")
        with pytest.raises(GraphError):
            g.add_edge(1, 2)
        with pytest.raises(GraphError):
            g.add_edge(2, 1)

    def test_multi_edge_collapses(self):
        g = NamedDAG()
        g.add_vertex(1, "a")
        g.add_vertex(2, "b")
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        assert g.edge_count() == 1

    def test_name_of_missing_vertex(self):
        g = NamedDAG()
        with pytest.raises(GraphError):
            g.name(3)

    def test_rename_vertex(self):
        g = NamedDAG()
        g.add_vertex(1, "old")
        g.rename_vertex(1, "new")
        assert g.name(1) == "new"

    def test_rename_missing_vertex(self):
        g = NamedDAG()
        with pytest.raises(GraphError):
            g.rename_vertex(1, "x")


class TestRemoval:
    def test_remove_vertex_drops_incident_edges(self):
        g = diamond()
        g.remove_vertex(1)
        assert 1 not in g
        assert g.successors(0) == {2}
        assert g.predecessors(3) == {2}

    def test_remove_missing_vertex(self):
        g = NamedDAG()
        with pytest.raises(GraphError):
            g.remove_vertex(9)


class TestInspection:
    def test_len_iter_edges(self):
        g = diamond()
        assert len(g) == 4
        assert sorted(g) == [0, 1, 2, 3]
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 3), (2, 3)]
        assert g.edge_count() == 4

    def test_degrees(self):
        g = diamond()
        assert g.out_degree(0) == 2
        assert g.in_degree(3) == 2
        assert g.in_degree(0) == 0

    def test_sources_sinks(self):
        g = diamond()
        assert g.sources() == [0]
        assert g.sinks() == [3]

    def test_has_edge(self):
        g = diamond()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert not g.has_edge(0, 3)

    def test_vertices_named(self):
        g = NamedDAG()
        g.add_vertex(1, "x")
        g.add_vertex(2, "x")
        g.add_vertex(3, "y")
        assert sorted(g.vertices_named("x")) == [1, 2]

    def test_successors_of_missing_vertex(self):
        with pytest.raises(GraphError):
            NamedDAG().successors(0)


class TestTopologicalOrder:
    def test_order_respects_edges(self):
        g = diamond()
        order = g.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for u, v in g.edges():
            assert pos[u] < pos[v]

    def test_cycle_detected(self):
        g = NamedDAG()
        g.add_vertex(1, "a")
        g.add_vertex(2, "b")
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        with pytest.raises(CycleError):
            g.topological_order()
        assert not g.is_acyclic()

    def test_validate_passes_on_dag(self):
        diamond().validate()

    def test_validate_detects_cycle(self):
        g = NamedDAG()
        g.add_vertex(1, "a")
        g.add_vertex(2, "b")
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        with pytest.raises(CycleError):
            g.validate()


class TestCopying:
    def test_copy_is_independent(self):
        g = diamond()
        h = g.copy()
        h.remove_vertex(3)
        assert 3 in g
        assert 3 not in h

    def test_relabeled(self):
        g = diamond()
        h = g.relabeled({0: 10, 1: 11, 2: 12, 3: 13})
        assert sorted(h.vertices()) == [10, 11, 12, 13]
        assert h.has_edge(10, 11)
        assert h.name(13) == "d"

    def test_relabeled_rejects_non_injective(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.relabeled({0: 5, 1: 5, 2: 6, 3: 7})


class TestHelpers:
    def test_induced_subgraph(self):
        g = diamond()
        sub = induced_subgraph(g, [0, 1, 3])
        assert sorted(sub.vertices()) == [0, 1, 3]
        assert sorted(sub.edges()) == [(0, 1), (1, 3)]

    def test_merge_disjoint(self):
        g1 = NamedDAG()
        g1.add_vertex(0, "a")
        g1.add_vertex(1, "b")
        g1.add_edge(0, 1)
        g2 = NamedDAG()
        g2.add_vertex(2, "c")
        merged = merge_disjoint([g1, g2])
        assert len(merged) == 3
        assert merged.has_edge(0, 1)

    def test_merge_disjoint_accepts_generator(self):
        # regression: a generator argument must not lose the edge pass
        g1 = NamedDAG()
        g1.add_vertex(0, "a")
        g1.add_vertex(1, "b")
        g1.add_edge(0, 1)
        merged = merge_disjoint(g for g in [g1])
        assert merged.edge_count() == 1

    def test_merge_disjoint_rejects_overlap(self):
        g1 = NamedDAG()
        g1.add_vertex(0, "a")
        g2 = NamedDAG()
        g2.add_vertex(0, "b")
        with pytest.raises(GraphError):
            merge_disjoint([g1, g2])

    def test_find_unique(self):
        g = diamond()
        assert find_unique(g, "b") == 1
        assert find_unique(g, "zz") is None

    def test_find_unique_ambiguous(self):
        g = NamedDAG()
        g.add_vertex(1, "x")
        g.add_vertex(2, "x")
        with pytest.raises(GraphError):
            find_unique(g, "x")
