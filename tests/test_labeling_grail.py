"""Tests for the GRAIL-style general-DAG baseline."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import LabelingError
from repro.graphs.random_graphs import random_two_terminal_dag
from repro.graphs.reachability import reaches
from repro.labeling.grail import GrailIndex

from tests.conftest import assert_reaches_matches_bfs, small_run


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bfs_on_random_dags(self, seed):
        rng = random.Random(seed)
        g = random_two_terminal_dag(30, rng).dag
        index = GrailIndex(g, traversals=3, rng=random.Random(seed + 100))
        assert_reaches_matches_bfs(g, index.reaches)

    def test_matches_bfs_on_workflow_runs(self, running_spec):
        run = small_run(running_spec, 200, seed=8)
        g = run.graph
        index = GrailIndex(g, traversals=4, rng=random.Random(9))
        assert_reaches_matches_bfs(
            g, index.reaches, sample=4000, rng=random.Random(10)
        )

    def test_reflexive(self):
        g = random_two_terminal_dag(10, random.Random(1)).dag
        index = GrailIndex(g)
        assert index.reaches(3, 3)


class TestFilter:
    def test_no_false_negatives(self):
        # the containment test must hold for every reachable pair
        rng = random.Random(2)
        g = random_two_terminal_dag(40, rng).dag
        index = GrailIndex(g, traversals=2, rng=random.Random(3))
        for u in g.vertices():
            for v in g.vertices():
                if reaches(g, u, v):
                    assert index.may_reach(index.label(u), index.label(v))

    def test_filter_prunes_most_negatives(self):
        rng = random.Random(4)
        g = random_two_terminal_dag(60, rng).dag
        index = GrailIndex(g, traversals=4, rng=random.Random(5))
        vs = sorted(g.vertices())
        query_rng = random.Random(6)
        for _ in range(3000):
            a, b = query_rng.choice(vs), query_rng.choice(vs)
            index.reaches(a, b)
        # most queries should resolve without the DFS fallback
        assert index.fallback_searches < index.queries

    def test_more_traversals_prune_more(self):
        g = random_two_terminal_dag(60, random.Random(7)).dag
        few = GrailIndex(g, traversals=1, rng=random.Random(8))
        many = GrailIndex(g, traversals=5, rng=random.Random(8))
        vs = sorted(g.vertices())
        rng = random.Random(9)
        pairs = [(rng.choice(vs), rng.choice(vs)) for _ in range(3000)]
        for a, b in pairs:
            few.reaches(a, b)
            many.reaches(a, b)
        assert many.fallback_searches <= few.fallback_searches


class TestAccounting:
    def test_label_bits_positive(self):
        g = random_two_terminal_dag(10, random.Random(11)).dag
        index = GrailIndex(g, traversals=2)
        assert index.label(0).bits > 0
        assert index.total_bits() >= 10 * index.label(0).bits // 4

    def test_unknown_vertex_rejected(self):
        g = random_two_terminal_dag(5, random.Random(12)).dag
        index = GrailIndex(g)
        with pytest.raises(LabelingError):
            index.label(99)

    def test_traversal_count_validated(self):
        g = random_two_terminal_dag(5, random.Random(13)).dag
        with pytest.raises(LabelingError):
            GrailIndex(g, traversals=0)
