"""Tests for BFS reachability and the bitset transitive closure."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import GraphError
from repro.graphs.digraph import NamedDAG
from repro.graphs.random_graphs import random_two_terminal_dag
from repro.graphs.reachability import (
    TransitiveClosure,
    ancestors_of,
    closure_pairs,
    descendants_of,
    reaches,
    restrict_topological,
)


def diamond():
    g = NamedDAG()
    for vid in range(4):
        g.add_vertex(vid, f"v{vid}")
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 3)
    return g


class TestReaches:
    def test_reflexive(self):
        g = diamond()
        assert reaches(g, 1, 1)

    def test_direct_and_transitive(self):
        g = diamond()
        assert reaches(g, 0, 1)
        assert reaches(g, 0, 3)

    def test_unreachable(self):
        g = diamond()
        assert not reaches(g, 1, 2)
        assert not reaches(g, 3, 0)

    def test_missing_vertex_rejected(self):
        with pytest.raises(GraphError):
            reaches(diamond(), 0, 99)


class TestDescendantsAncestors:
    def test_descendants_include_self(self):
        g = diamond()
        assert descendants_of(g, 1) == {1, 3}

    def test_ancestors_include_self(self):
        g = diamond()
        assert ancestors_of(g, 3) == {0, 1, 2, 3}

    def test_closure_pairs_matches_bfs(self):
        g = diamond()
        pairs = closure_pairs(g)
        for u, v in itertools.product(g.vertices(), repeat=2):
            assert ((u, v) in pairs) == reaches(g, u, v)


class TestTransitiveClosure:
    def test_matches_bfs_on_diamond(self):
        g = diamond()
        tc = TransitiveClosure(g)
        for u, v in itertools.product(g.vertices(), repeat=2):
            assert tc.reaches(u, v) == reaches(g, u, v)

    def test_matches_bfs_on_random_graphs(self):
        rng = random.Random(42)
        for _ in range(10):
            g = random_two_terminal_dag(15, rng).dag
            tc = TransitiveClosure(g)
            for u, v in itertools.product(g.vertices(), repeat=2):
                assert tc.reaches(u, v) == reaches(g, u, v)

    def test_rank_is_topological(self):
        g = diamond()
        tc = TransitiveClosure(g)
        for u, v in g.edges():
            assert tc.rank(u) < tc.rank(v)

    def test_row_bits_count_ancestors(self):
        g = diamond()
        tc = TransitiveClosure(g)
        assert bin(tc.row_bits(3)).count("1") == 3  # 0, 1, 2 reach 3

    def test_len(self):
        assert len(TransitiveClosure(diamond())) == 4


class TestRestrictTopological:
    def test_restriction_preserves_order(self):
        g = diamond()
        order = restrict_topological(g, [3, 0])
        assert order == [0, 3]
