"""Tests for bounded run-language enumeration."""

from __future__ import annotations

import itertools

import pytest

from repro.datasets import fig12_path_grammar, running_example
from repro.graphs.reachability import reaches
from repro.labeling.drl import DRL
from repro.workflow.enumerate_runs import count_runs, enumerate_runs
from repro.workflow.grammar import analyze_grammar


class TestEnumeration:
    def test_yields_complete_runs(self, running_spec):
        for run in enumerate_runs(running_spec, max_size=40, max_copies=2):
            for v in run.graph.vertices():
                assert running_spec.is_atomic(run.graph.name(v))
            run.graph.validate()

    def test_respects_size_bound(self, running_spec):
        for run in enumerate_runs(running_spec, max_size=40, max_copies=2):
            assert run.run_size() <= 40

    def test_runs_are_distinct(self, running_spec):
        signatures = set()
        for run in enumerate_runs(running_spec, max_size=35, max_copies=2):
            signature = tuple(
                (step.head, step.impl_key, len(step.copies))
                for step in run.steps
            )
            assert signature not in signatures
            signatures.add(signature)
        assert len(signatures) > 3

    def test_max_runs_truncates(self, running_spec):
        runs = list(
            enumerate_runs(running_spec, max_size=60, max_copies=2, max_runs=5)
        )
        assert len(runs) == 5

    def test_count_matches_enumeration(self, running_spec):
        runs = list(enumerate_runs(running_spec, max_size=35, max_copies=2))
        assert count_runs(running_spec, max_size=35, max_copies=2) == len(runs)

    def test_path_grammar_language_shape(self):
        # Figure 12's language: simple paths; bounded enumeration yields
        # one run per derivation tree shape
        spec = fig12_path_grammar()
        for run in enumerate_runs(spec, max_size=30, max_copies=1):
            for v in run.graph.vertices():
                assert run.graph.out_degree(v) <= 1


class TestExhaustiveLabeling:
    def test_drl_correct_on_every_small_run(self, running_spec):
        """Exhaustive check: every bounded member of L(G) labels correctly."""
        info = analyze_grammar(running_spec)
        scheme = DRL(running_spec, info=info)
        checked = 0
        for run in enumerate_runs(
            running_spec, max_size=30, max_copies=2, info=info
        ):
            labels = scheme.label_derivation(run)
            g = run.graph
            for a, b in itertools.product(g.vertices(), repeat=2):
                assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)
            checked += 1
        assert checked >= 5
