"""Tests for the Theorem 4 differential-production construction."""

from __future__ import annotations

import pytest

from repro.datasets import fig12_path_grammar, running_example, theorem1_grammar
from repro.datasets.synthetic import layered_spec, synthetic_spec
from repro.errors import UnsupportedWorkflowError
from repro.graphs.reachability import reaches
from repro.workflow.lowerbound import differential_production


def assert_gadget_property(gadget):
    """The defining Theorem 4 property of ``A := h*``."""
    g = gadget.graph
    # both recursive vertices carry the head name
    assert g.name(gadget.recursive_a) == gadget.head
    assert g.name(gadget.recursive_b) == gadget.head
    # the differential vertex reaches exactly one of them
    reaches_a = reaches(g, gadget.differential, gadget.recursive_a)
    reaches_b = reaches(g, gadget.differential, gadget.recursive_b)
    assert reaches_a != reaches_b, (
        f"differential vertex must split the pair "
        f"(reaches_a={reaches_a}, reaches_b={reaches_b})"
    )
    g.validate()


class TestConstruction:
    def test_theorem1_grammar_parallel_case(self, theorem1_spec):
        gadget = differential_production(theorem1_spec)
        assert gadget.head == "A"
        assert gadget.case == "parallel"
        assert_gadget_property(gadget)

    def test_fig12_grammar_series_case(self):
        gadget = differential_production(fig12_path_grammar())
        assert gadget.case == "series"
        assert_gadget_property(gadget)

    def test_nonlinear_synthetic(self):
        spec = synthetic_spec(8, 5, linear=False)
        gadget = differential_production(spec)
        assert gadget.case == "parallel"
        assert_gadget_property(gadget)

    @pytest.mark.parametrize("seed", range(5))
    def test_layered_parallel_family(self, seed):
        spec = layered_spec(
            kinds=["plain"], sub_size=7, recursion="parallel", seed=seed
        )
        gadget = differential_production(spec)
        assert_gadget_property(gadget)

    @pytest.mark.parametrize("seed", range(5))
    def test_layered_linear_chained_recursion(self, seed):
        # linear per-production recursion is rejected
        spec = layered_spec(
            kinds=["plain"], sub_size=7, recursion="linear", seed=seed
        )
        with pytest.raises(UnsupportedWorkflowError):
            differential_production(spec)


class TestRejections:
    def test_linear_grammar_rejected(self, running_spec):
        with pytest.raises(UnsupportedWorkflowError):
            differential_production(running_spec)

    def test_non_recursive_rejected(self, bioaid_norec_spec):
        with pytest.raises(UnsupportedWorkflowError):
            differential_production(bioaid_norec_spec)
