"""Tests for the TCL and BFS skeleton schemes (Section 5.1)."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import LabelingError
from repro.graphs.reachability import reaches
from repro.labeling.skeleton import (
    BFSSkeleton,
    TCLSkeleton,
    make_skeleton,
    spec_graph_table,
)


class TestFactory:
    def test_make_tcl(self, running_spec):
        assert isinstance(make_skeleton(running_spec, "tcl"), TCLSkeleton)

    def test_make_bfs(self, running_spec):
        assert isinstance(make_skeleton(running_spec, "bfs"), BFSSkeleton)

    def test_unknown_kind(self, running_spec):
        with pytest.raises(LabelingError):
            make_skeleton(running_spec, "magic")


class TestAgreement:
    def test_tcl_and_bfs_agree_with_ground_truth(self, running_spec):
        table = spec_graph_table(running_spec)
        tcl = TCLSkeleton(table)
        bfs = BFSSkeleton(table)
        for key, graph in table.items():
            for u, v in itertools.product(graph.vertices(), repeat=2):
                expected = reaches(graph, u, v)
                assert tcl.reaches(key, u, v) == expected
                assert bfs.reaches(key, u, v) == expected

    def test_reflexive(self, running_spec):
        tcl = make_skeleton(running_spec, "tcl")
        assert tcl.reaches("g0", 0, 0)

    def test_unknown_graph_key(self, running_spec):
        tcl = make_skeleton(running_spec, "tcl")
        with pytest.raises(LabelingError):
            tcl.reaches("missing", 0, 0)
        bfs = make_skeleton(running_spec, "bfs")
        with pytest.raises(LabelingError):
            bfs.reaches("missing", 0, 0)


class TestOverhead:
    def test_tcl_bits_formula(self, running_spec):
        # the i-th vertex stores i-1 bits: n(n-1)/2 per graph
        table = spec_graph_table(running_spec)
        tcl = TCLSkeleton(table)
        expected = sum(len(g) * (len(g) - 1) // 2 for g in table.values())
        assert tcl.total_bits() == expected

    def test_bfs_stores_nothing(self, running_spec):
        assert make_skeleton(running_spec, "bfs").total_bits() == 0

    def test_build_time_recorded(self, running_spec):
        tcl = make_skeleton(running_spec, "tcl")
        assert tcl.build_seconds >= 0.0

    def test_bioaid_overhead_is_small(self, bioaid_spec):
        # Section 7.2: skeleton labels take negligible storage (~650 bits)
        tcl = make_skeleton(bioaid_spec, "tcl")
        assert tcl.total_bits() < 2000
