"""Tests for the derivation engine and random run generation."""

from __future__ import annotations

import random

import pytest

from repro.errors import DerivationError
from repro.graphs.reachability import reaches
from repro.workflow.derivation import (
    DerivationEngine,
    DerivationPolicy,
    random_derivation,
    replay_prefix,
    sample_run,
)


class TestEngineBasics:
    def test_begin_instantiates_start_graph(self, running_spec):
        eng = DerivationEngine(running_spec)
        inst = eng.begin()
        assert inst.key == "g0"
        assert len(eng.graph) == 3  # s0, L, t0
        assert set(eng.pending.values()) == {"L"}

    def test_begin_twice_rejected(self, running_spec):
        eng = DerivationEngine(running_spec)
        eng.begin()
        with pytest.raises(DerivationError):
            eng.begin()

    def test_expand_before_begin_rejected(self, running_spec):
        eng = DerivationEngine(running_spec)
        with pytest.raises(DerivationError):
            eng.expand(0, "L#0")

    def test_expand_non_pending_rejected(self, running_spec):
        eng = DerivationEngine(running_spec)
        inst = eng.begin()
        source = inst.mapping[0]  # s0 is atomic
        with pytest.raises(DerivationError):
            eng.expand(source, "L#0")

    def test_expand_with_wrong_impl_rejected(self, running_spec):
        eng = DerivationEngine(running_spec)
        eng.begin()
        loop_vid = next(iter(eng.pending))
        with pytest.raises(DerivationError):
            eng.expand(loop_vid, "A#0")

    def test_copies_on_plain_composite_rejected(self, running_spec):
        eng = DerivationEngine(running_spec)
        eng.begin()
        loop_vid = next(iter(eng.pending))
        eng.expand(loop_vid, "L#0", copies=1)
        fork_vid = next(v for v, h in eng.pending.items() if h == "F")
        eng.expand(fork_vid, "F#0", copies=2)
        a_vid = next(v for v, h in eng.pending.items() if h == "A")
        with pytest.raises(DerivationError):
            eng.expand(a_vid, "A#1", copies=2)

    def test_zero_copies_rejected(self, running_spec):
        eng = DerivationEngine(running_spec)
        eng.begin()
        loop_vid = next(iter(eng.pending))
        with pytest.raises(DerivationError):
            eng.expand(loop_vid, "L#0", copies=0)


class TestSeriesParallelSemantics:
    def test_loop_copies_chained_in_series(self, running_spec):
        eng = DerivationEngine(running_spec)
        eng.begin()
        loop_vid = next(iter(eng.pending))
        step = eng.expand(loop_vid, "L#0", copies=3)
        template = running_spec.graph("L#0")
        sinks = [c.mapping[template.sink] for c in step.copies]
        sources = [c.mapping[template.source] for c in step.copies]
        assert eng.graph.has_edge(sinks[0], sources[1])
        assert eng.graph.has_edge(sinks[1], sources[2])
        # copy 1 reaches copy 3, not vice versa
        assert reaches(eng.graph, sources[0], sinks[2])
        assert not reaches(eng.graph, sources[2], sinks[0])

    def test_fork_copies_parallel(self, running_spec):
        eng = DerivationEngine(running_spec)
        eng.begin()
        loop_vid = next(iter(eng.pending))
        eng.expand(loop_vid, "L#0")
        fork_vid = next(v for v, h in eng.pending.items() if h == "F")
        step = eng.expand(fork_vid, "F#0", copies=3)
        template = running_spec.graph("F#0")
        sources = [c.mapping[template.source] for c in step.copies]
        sinks = [c.mapping[template.sink] for c in step.copies]
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert not reaches(eng.graph, sources[i], sinks[j])

    def test_finish_requires_completion(self, running_spec):
        eng = DerivationEngine(running_spec)
        eng.begin()
        with pytest.raises(DerivationError):
            eng.finish()


class TestRandomDerivation:
    def test_terminates_and_is_atomic_only(self, running_spec, rng):
        policy = DerivationPolicy(rng=rng, target_size=120)
        derivation = random_derivation(running_spec, policy)
        for v in derivation.graph.vertices():
            assert running_spec.is_atomic(derivation.graph.name(v))

    def test_run_graph_is_two_terminal_dag(self, running_spec, rng):
        policy = DerivationPolicy(rng=rng, target_size=100)
        derivation = random_derivation(running_spec, policy)
        g = derivation.graph
        g.validate()
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 1

    def test_deterministic_given_seed(self, running_spec):
        p1 = DerivationPolicy(rng=random.Random(5), target_size=80)
        p2 = DerivationPolicy(rng=random.Random(5), target_size=80)
        d1 = random_derivation(running_spec, p1)
        d2 = random_derivation(running_spec, p2)
        assert sorted(d1.graph.edges()) == sorted(d2.graph.edges())

    def test_shuffled_order_still_valid(self, running_spec, rng):
        policy = DerivationPolicy(rng=rng, target_size=100, shuffle_order=True)
        derivation = random_derivation(running_spec, policy)
        derivation.graph.validate()

    def test_all_instances_cover_run(self, running_spec, rng):
        policy = DerivationPolicy(rng=rng, target_size=60)
        derivation = random_derivation(running_spec, policy)
        mapped = set()
        for inst in derivation.all_instances():
            template = running_spec.graph(inst.key)
            for tv in template.vertices():
                if running_spec.is_atomic(template.name(tv)):
                    mapped.add(inst.mapping[tv])
        assert mapped == set(derivation.graph.vertices())


class TestSampleRun:
    @pytest.mark.parametrize("target", [100, 400, 1000])
    def test_size_near_target(self, running_spec, target):
        derivation = sample_run(running_spec, target, random.Random(target))
        assert abs(derivation.run_size() - target) / target <= 0.5

    def test_works_for_bioaid(self, bioaid_spec):
        derivation = sample_run(bioaid_spec, 500, random.Random(3))
        assert derivation.run_size() > 200
        derivation.graph.validate()


class TestReplayPrefix:
    def test_full_replay_matches_final_graph(self, running_spec, rng):
        policy = DerivationPolicy(rng=rng, target_size=80)
        derivation = random_derivation(running_spec, policy)
        replayed = replay_prefix(
            running_spec, derivation, len(derivation.steps)
        )
        assert sorted(replayed.edges()) == sorted(derivation.graph.edges())

    def test_prefix_graphs_are_valid(self, running_spec, rng):
        policy = DerivationPolicy(rng=rng, target_size=60)
        derivation = random_derivation(running_spec, policy)
        for upto in range(len(derivation.steps) + 1):
            replay_prefix(running_spec, derivation, upto).validate()

    def test_prefix_preserves_reachability(self, running_spec, rng):
        # Remark 1: each step preserves reachability among existing vertices.
        policy = DerivationPolicy(rng=rng, target_size=60)
        derivation = random_derivation(running_spec, policy)
        previous = None
        for upto in range(len(derivation.steps) + 1):
            current = replay_prefix(running_spec, derivation, upto)
            if previous is not None:
                replaced = derivation.steps[upto - 1].target
                shared = [
                    v for v in previous.vertices() if v != replaced
                ]
                for u in shared:
                    for v in shared:
                        assert reaches(previous, u, v) == reaches(current, u, v)
            previous = current
