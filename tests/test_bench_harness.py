"""Tests for the benchmark harness and a smoke pass over the drivers."""

from __future__ import annotations

import pytest

from repro.bench.figures import (
    ALL_DRIVERS,
    fig01_bounds,
    tab2_spec_overhead,
)
from repro.bench.harness import (
    BenchConfig,
    Table,
    default_config,
    format_table,
    run_ladder,
    sampled_runs,
    time_call,
    time_per_query,
)
from repro.datasets import running_example

TINY = BenchConfig(scale=0.05, samples=1, queries=200)


class TestConfig:
    def test_default_config_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_SAMPLES", "7")
        monkeypatch.setenv("REPRO_QUERIES", "123")
        config = default_config()
        assert config.scale == 0.5
        assert config.samples == 7
        assert config.queries == 123

    def test_run_ladder_doubles(self):
        config = BenchConfig(scale=0.25)  # max 8000
        assert run_ladder(config) == [1000, 2000, 4000, 8000]

    def test_run_ladder_minimum(self):
        config = BenchConfig(scale=0.001)
        assert run_ladder(config) == [1000]


class TestHelpers:
    def test_sampled_runs_deterministic(self, running_spec):
        a = sampled_runs(running_spec, 150, TINY, tag=1)
        b = sampled_runs(running_spec, 150, TINY, tag=1)
        assert [r.run_size() for r in a] == [r.run_size() for r in b]

    def test_time_call_returns_result(self):
        result, seconds = time_call(lambda: 42)
        assert result == 42
        assert seconds >= 0

    def test_time_per_query_runs_queries(self):
        calls = []
        labels = {1: "a", 2: "b"}
        time_per_query(lambda a, b: calls.append((a, b)), labels, count=10)
        assert len(calls) == 10


class TestTable:
    def test_add_and_as_dicts(self):
        table = Table(id="t", title="demo", columns=["a", "b"])
        table.add(1, 2.5)
        assert table.as_dicts() == [{"a": 1, "b": 2.5}]

    def test_arity_mismatch_rejected(self):
        table = Table(id="t", title="demo", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_format_table_contains_everything(self):
        table = Table(
            id="t", title="demo", columns=["name", "value"], notes="hello"
        )
        table.add("row1", 3.14159)
        text = format_table(table)
        assert "## t: demo" in text
        assert "row1" in text
        assert "3.14" in text
        assert "note: hello" in text


class TestBenchCli:
    def test_unknown_experiment_exits_2(self, capsys):
        from repro.bench.__main__ import main

        assert main(["bench", "fig99"]) == 2

    def test_selected_experiment_runs(self, capsys, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_SCALE", "0.05")
        monkeypatch.setenv("REPRO_SAMPLES", "1")
        monkeypatch.setenv("REPRO_QUERIES", "200")
        assert main(["bench", "tab2"]) == 0
        out = capsys.readouterr().out
        assert "tab2" in out

    def test_output_file_written(self, capsys, monkeypatch, tmp_path):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_SCALE", "0.05")
        monkeypatch.setenv("REPRO_SAMPLES", "1")
        monkeypatch.setenv("REPRO_QUERIES", "200")
        path = tmp_path / "out.md"
        assert main(["bench", "--output", str(path), "tab2"]) == 0
        assert "tab2" in path.read_text()

    def test_output_without_path_exits_2(self, capsys):
        from repro.bench.__main__ import main

        assert main(["bench", "--output"]) == 2


class TestDriverSmoke:
    """Every driver runs end-to-end at tiny scale and yields rows."""

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "fig01", "thm1", "fig14", "fig15", "fig16", "fig17", "fig18",
            "fig19", "fig20", "fig21", "fig22", "tab2",
        }
        assert expected <= set(ALL_DRIVERS)

    def test_tab2_rows(self):
        table = tab2_spec_overhead(TINY)
        schemes = [row[0] for row in table.rows]
        assert schemes == ["DRL(TCL)", "SKL(TCL)"]

    def test_fig01_rows(self):
        table = fig01_bounds(TINY)
        assert len(table.rows) == 6

    @pytest.mark.parametrize("name", ["fig14", "fig16", "fig20", "abl-r"])
    def test_driver_produces_rows(self, name):
        table = ALL_DRIVERS[name](TINY)
        assert table.rows
        assert table.id == name or table.id.startswith("abl")
