"""Smoke tests: every bundled example runs successfully."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p
    for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "provenance_monitoring",
        "genomics_pipeline",
        "scheme_comparison",
        "parse_tree_explorer",
    } <= names
