"""Tests for the AST invariant lint suite (repro.analysis).

Three layers:

* per-rule fixtures -- one snippet each rule must flag and one it must
  leave alone, so every rule is demonstrably alive;
* project-rule fixtures -- miniature ``src/repro/service`` trees with
  deliberately drifted op tables and docs;
* the real tree -- ``repro lint`` over this repository's ``src`` and
  ``tools`` must report zero findings (suppressions included), which is
  exactly the gate CI enforces.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_CHECKERS,
    PARSE_RULE,
    RULE_IDS,
    lint,
    lint_paths,
)
from repro.analysis.rules import FILE_RULES

REPO = Path(__file__).resolve().parents[1]

#: rule ids are frozen: suppression comments and CI configuration refer
#: to them by name, so renaming one is a breaking change
FROZEN_RULE_IDS = {
    "lock-discipline",
    "lock-order",
    "durability-fsync",
    "durability-order",
    "nondet-hash",
    "nondet-time",
    "mutable-default",
    "broad-except",
    "metric-names",
    "failpoint-names",
    "ops-surface",
    "ops-idempotent",
    "docs-drift",
    "deadlock-cycle",
    "blocking-under-lock",
    "exception-escape",
    "resource-leak",
}


def run_rule(tmp_path: Path, rule: str, code: str, name: str = "mod.py"):
    """Lint one snippet with one rule; returns the findings list."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code), encoding="utf-8")
    report = lint([target], rules=[rule])
    return report.findings


# ---------------------------------------------------------------------------
# registry invariants
# ---------------------------------------------------------------------------


def test_rule_ids_are_frozen():
    assert set(RULE_IDS) == FROZEN_RULE_IDS
    assert len(RULE_IDS) == len(set(RULE_IDS)), "duplicate rule id"
    assert PARSE_RULE not in FROZEN_RULE_IDS  # reserved, not a checker


def test_every_checker_documents_itself():
    for checker in ALL_CHECKERS:
        assert checker.rule, checker
        assert checker.summary, checker.rule
        assert checker.hint, checker.rule


def test_unknown_rule_is_an_error(tmp_path):
    (tmp_path / "m.py").write_text("x = 1\n", encoding="utf-8")
    with pytest.raises(ValueError, match="no-such-rule"):
        lint([tmp_path], rules=["no-such-rule"])


def test_unparseable_file_is_a_parse_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    report = lint([bad])
    assert [f.rule for f in report.findings] == [PARSE_RULE]


# ---------------------------------------------------------------------------
# nondeterminism rules
# ---------------------------------------------------------------------------


def test_nondet_hash_flags_builtin_hash(tmp_path):
    findings = run_rule(tmp_path, "nondet-hash", """
        def shard_for(self, name):
            return self.shards[hash(name) % len(self.shards)]
    """)
    assert len(findings) == 1
    assert findings[0].rule == "nondet-hash"
    assert "salted" in findings[0].message


def test_nondet_hash_clean_on_crc32(tmp_path):
    findings = run_rule(tmp_path, "nondet-hash", """
        import zlib

        def shard_for(self, name):
            index = zlib.crc32(name.encode("utf-8")) % len(self.shards)
            return self.shards[index]
    """)
    assert findings == []


def test_nondet_time_flags_wall_clock(tmp_path):
    findings = run_rule(tmp_path, "nondet-time", """
        import time

        def measure(fn):
            started = time.time()
            fn()
            return time.time() - started
    """)
    assert len(findings) == 2


def test_nondet_time_flags_bare_import(tmp_path):
    findings = run_rule(tmp_path, "nondet-time", """
        from time import time

        def stamp():
            return time()
    """)
    assert len(findings) == 1


def test_nondet_time_clean_on_perf_counter(tmp_path):
    findings = run_rule(tmp_path, "nondet-time", """
        import time

        def measure(fn):
            started = time.perf_counter()
            fn()
            return time.perf_counter() - started
    """)
    assert findings == []


def test_mutable_default_flags_literal_and_constructor(tmp_path):
    findings = run_rule(tmp_path, "mutable-default", """
        def collect(item, into=[]):
            into.append(item)
            return into

        def index(pairs, table=dict()):
            table.update(pairs)
            return table
    """)
    assert len(findings) == 2


def test_mutable_default_clean_on_none(tmp_path):
    findings = run_rule(tmp_path, "mutable-default", """
        def collect(item, into=None, limit=10, tag=("a",)):
            if into is None:
                into = []
            into.append(item)
            return into
    """)
    assert findings == []


def test_broad_except_flags_bare_and_silent(tmp_path):
    findings = run_rule(tmp_path, "broad-except", """
        def risky(fn):
            try:
                fn()
            except:
                pass

        def quiet(fn):
            try:
                fn()
            except Exception:
                pass
    """)
    assert len(findings) == 2


def test_broad_except_clean_when_handled_or_narrow(tmp_path):
    findings = run_rule(tmp_path, "broad-except", """
        def handled(fn, errors):
            try:
                fn()
            except Exception as exc:
                errors.append(str(exc))

        def narrow(fn):
            try:
                fn()
            except OSError:
                pass
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# lock discipline
# ---------------------------------------------------------------------------

# these rules only watch the striped modules, so fixtures must be named
# engine.py / sessions.py / cluster.py

def test_lock_discipline_flags_unlocked_stripe_write(tmp_path):
    findings = run_rule(tmp_path, "lock-discipline", """
        class Engine:
            def put(self, uid, value):
                shard = self._shard_for(uid)
                shard.entries[uid] = value
    """, name="engine.py")
    assert len(findings) == 1
    assert "outside a lock" in findings[0].message


def test_lock_discipline_flags_mutator_method_on_shared(tmp_path):
    findings = run_rule(tmp_path, "lock-discipline", """
        class Registry:
            def drop(self, name):
                self._tables[0].pop(name, None)
    """, name="sessions.py")
    assert len(findings) == 1


def test_lock_discipline_clean_under_with_lock(tmp_path):
    findings = run_rule(tmp_path, "lock-discipline", """
        class Engine:
            def put(self, uid, value):
                shard = self._shard_for(uid)
                with shard.lock:
                    shard.entries[uid] = value
    """, name="engine.py")
    assert findings == []


def test_lock_discipline_clean_under_exitstack(tmp_path):
    findings = run_rule(tmp_path, "lock-discipline", """
        from contextlib import ExitStack

        class Engine:
            def clear(self):
                with ExitStack() as stack:
                    for shard in self._shards:
                        stack.enter_context(shard.lock)
                    for shard in self._shards:
                        shard.entries.clear()
    """, name="engine.py")
    assert findings == []


def test_lock_discipline_exempts_init_and_other_files(tmp_path):
    code = """
        class Engine:
            def __init__(self, shards):
                self._shards = list(shards)
                self._shards.append(None)
    """
    assert run_rule(tmp_path, "lock-discipline", code,
                    name="engine.py") == []
    unlocked = """
        class Engine:
            def put(self, uid, value):
                self._shards[0].entries[uid] = value
    """
    # same mutation, but not in a striped module -> out of scope
    assert run_rule(tmp_path, "lock-discipline", unlocked,
                    name="helpers.py") == []


def test_lock_order_flags_nested_stripes(tmp_path):
    findings = run_rule(tmp_path, "lock-order", """
        class Engine:
            def move(self, a, b):
                with self._shards[a].lock:
                    with self._shards[b].lock:
                        pass
    """, name="engine.py")
    assert len(findings) == 1
    assert "second stripe lock" in findings[0].message


def test_lock_order_clean_on_sequential_stripes(tmp_path):
    findings = run_rule(tmp_path, "lock-order", """
        class Engine:
            def move(self, a, b):
                with self._shards[a].lock:
                    value = self.read(a)
                with self._shards[b].lock:
                    self.write(b, value)
    """, name="engine.py")
    assert findings == []


# ---------------------------------------------------------------------------
# durability rules
# ---------------------------------------------------------------------------

def test_durability_fsync_flags_unsynced_write(tmp_path):
    findings = run_rule(tmp_path, "durability-fsync", """
        def append(handle, record):
            handle.write(record)
            handle.flush()
    """, name="wal.py")
    assert len(findings) == 1
    assert "fsync" in findings[0].message


def test_durability_fsync_clean_with_fsync(tmp_path):
    code = """
        import os

        def append(handle, record):
            handle.write(record)
            handle.flush()
            os.fsync(handle.fileno())
    """
    assert run_rule(tmp_path, "durability-fsync", code,
                    name="wal.py") == []
    helper = """
        def stage(path, payload):
            path.write_text(payload)
            fsync_file(path)
    """
    assert run_rule(tmp_path, "durability-fsync", helper,
                    name="checkpoint.py") == []
    # writes outside the durability modules are out of scope
    assert run_rule(tmp_path, "durability-fsync", """
        def note(handle, line):
            handle.write(line)
    """, name="report.py") == []


def test_durability_order_flags_truncate_before_flip(tmp_path):
    findings = run_rule(tmp_path, "durability-order", """
        import os

        def roll(wal, directory, staged):
            wal.truncate_to_base()
            os.replace(staged, directory / _CURRENT)
    """, name="wal.py")
    assert len(findings) == 1
    assert "crash" in findings[0].message


def test_durability_order_clean_in_canonical_order(tmp_path):
    findings = run_rule(tmp_path, "durability-order", """
        import os

        def roll(session, wal, directory, staged):
            checkpoint_session(session, staged)
            os.replace(staged, directory / _CURRENT)
            wal.truncate_to_base()
    """, name="wal.py")
    assert findings == []


# ---------------------------------------------------------------------------
# metric names
# ---------------------------------------------------------------------------

def test_metric_names_flags_inline_literals(tmp_path):
    findings = run_rule(tmp_path, "metric-names", """
        def wire(registry, trace, start, end):
            registry.histogram("repro_op_latency_seconds", op="query")
            registry.counter("repro_requests_total")
            registry.histogram(NAME, stage="cache_probe")
            trace.add_span("wal_fsync", start, end)
    """)
    assert len(findings) == 4


def test_metric_names_clean_on_constants(tmp_path):
    findings = run_rule(tmp_path, "metric-names", """
        from repro.obs.names import OP_LATENCY_SECONDS, SPAN_WAL_FSYNC

        def wire(registry, trace, start, end):
            registry.histogram(OP_LATENCY_SECONDS, op="query")
            trace.add_span(SPAN_WAL_FSYNC, start, end)
    """)
    assert findings == []


def test_failpoint_names_flags_unregistered_and_computed(tmp_path):
    findings = run_rule(tmp_path, "failpoint-names", """
        from repro.faults import FAILPOINTS

        def roll(name):
            FAILPOINTS.hit("wal.no_such_point")
            FAILPOINTS.hit(name)
            FAILPOINTS.hit("wal." + name)
    """)
    assert len(findings) == 3
    assert all(f.rule == "failpoint-names" for f in findings)
    assert "not registered" in findings[0].message


def test_failpoint_names_clean_on_catalog_literals(tmp_path):
    findings = run_rule(tmp_path, "failpoint-names", """
        from repro.faults import FAILPOINTS

        def roll():
            FAILPOINTS.hit("wal.pre_fsync")
            FAILPOINTS.hit("ckpt.pre_flip")
            other.hit("not-a-failpoint-registry")
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

def test_noqa_suppresses_and_is_reported(tmp_path):
    target = tmp_path / "wal.py"
    target.write_text(textwrap.dedent("""
        def append(handle, record):
            handle.write(record)  # repro: noqa[durability-fsync] -- caller fsyncs
    """), encoding="utf-8")
    report = lint([target], rules=["durability-fsync"])
    assert report.findings == []
    assert len(report.suppressed) == 1
    assert report.suppressed[0]["reason"] == "caller fsyncs"
    assert report.exit_code == 0


def test_noqa_covers_only_named_rules(tmp_path):
    target = tmp_path / "wal.py"
    target.write_text(textwrap.dedent("""
        def append(handle, record):
            handle.write(record)  # repro: noqa[broad-except]
    """), encoding="utf-8")
    report = lint([target], rules=["durability-fsync"])
    assert [f.rule for f in report.findings] == ["durability-fsync"]


def test_noqa_multiple_rules_one_comment(tmp_path):
    target = tmp_path / "engine.py"
    target.write_text(textwrap.dedent("""
        import time

        class Engine:
            def put(self, uid, value):
                self._shards[0].entries[uid] = time.time()  # repro: noqa[lock-discipline, nondet-time] -- test fixture
    """), encoding="utf-8")
    report = lint([target], rules=["lock-discipline", "nondet-time"])
    assert report.findings == []
    assert len(report.suppressed) == 2


# ---------------------------------------------------------------------------
# project rules (miniature drifted service trees)
# ---------------------------------------------------------------------------

MINI_PROTOCOL = '''
"""Mini protocol.

Operations::

    ping
    ingest
"""

OPS = ("ping", "ingest")
'''

MINI_SERVER_OK = """
class Server:
    def __init__(self):
        self._ops = {
            "ping": self._op_ping,
            "ingest": self._op_ingest,
        }

    def _op_ping(self, request):
        return {"pong": True}

    def _op_ingest(self, request):
        return self.manager.ingest(request.params)
"""

MINI_CLIENT_OK = """
IDEMPOTENT_OPS = frozenset({"ping"})
MUTATING_OPS = frozenset({"ingest"})


class ServiceClient:
    def call(self, op, **params):
        return {}

    def ping(self):
        return self.call("ping")

    def ingest(self, events):
        return self.call("ingest", events=events)
"""


def build_tree(tmp_path: Path, protocol=MINI_PROTOCOL,
               server=MINI_SERVER_OK, client=MINI_CLIENT_OK,
               docs=None) -> Path:
    service = tmp_path / "src" / "repro" / "service"
    service.mkdir(parents=True)
    (service / "protocol.py").write_text(protocol, encoding="utf-8")
    (service / "server.py").write_text(server, encoding="utf-8")
    (service / "client.py").write_text(client, encoding="utf-8")
    for name, text in (docs or {}).items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return tmp_path / "src"


def test_ops_surface_clean_on_consistent_tree(tmp_path):
    root = build_tree(tmp_path)
    report = lint([root], rules=["ops-surface"])
    assert report.findings == []


def test_ops_surface_flags_dispatch_and_classification_drift(tmp_path):
    server = """
class Server:
    def __init__(self):
        self._ops = {
            "ping": self._op_ping,
            "ingest": self._op_ingest,
            "legacy": self._op_legacy,
        }
"""
    client = """
IDEMPOTENT_OPS = frozenset({"ping", "ingest"})
MUTATING_OPS = frozenset({"ingest"})


class ServiceClient:
    def call(self, op, **params):
        return {}

    def ping(self):
        return self.call("ping")
"""
    root = build_tree(tmp_path, server=server, client=client)
    report = lint([root], rules=["ops-surface"])
    messages = " | ".join(f.message for f in report.findings)
    assert "absent from protocol.OPS: legacy" in messages
    assert "both idempotent and mutating: ingest" in messages
    assert "no ServiceClient wrapper issues op(s): ingest" in messages


def test_ops_surface_flags_unclassified_op(tmp_path):
    client = """
IDEMPOTENT_OPS = frozenset({"ping"})
MUTATING_OPS = frozenset()


class ServiceClient:
    def call(self, op, **params):
        return {}

    def ping(self):
        return self.call("ping")

    def ingest(self, events):
        return self.call("ingest", events=events)
"""
    root = build_tree(tmp_path, client=client)
    report = lint([root], rules=["ops-surface"])
    messages = " | ".join(f.message for f in report.findings)
    assert "not classified for the retry policy: ingest" in messages


def test_ops_idempotent_flags_mutating_handler(tmp_path):
    server = """
class Server:
    def __init__(self):
        self._ops = {
            "ping": self._op_ping,
            "ingest": self._op_ingest,
        }

    def _op_ping(self, request):
        self.manager.create_session(request.params)
        return {"pong": True}

    def _op_ingest(self, request):
        return self.manager.ingest(request.params)
"""
    root = build_tree(tmp_path, server=server)
    report = lint([root], rules=["ops-idempotent"])
    assert len(report.findings) == 1
    assert "'ping'" in report.findings[0].message
    assert "create_session" in report.findings[0].message


def test_ops_idempotent_clean_on_read_only_handlers(tmp_path):
    root = build_tree(tmp_path)
    report = lint([root], rules=["ops-idempotent"])
    assert report.findings == []


SERVICE_MD_OK = """
# Service

| op | params |
| --- | --- |
| `ping` | none |
| `ingest` | events |
"""

API_MD_OK = """
# API

### class `ServiceClient`

* `ping` — probe the server.
* `ingest` — append events.
"""


def test_docs_drift_clean_on_matching_docs(tmp_path):
    root = build_tree(tmp_path, docs={
        "docs/SERVICE.md": SERVICE_MD_OK,
        "docs/API.md": API_MD_OK,
    })
    report = lint([root], rules=["docs-drift"])
    assert report.findings == []


def test_docs_drift_flags_stale_table_and_docstring(tmp_path):
    stale_protocol = '''
"""Mini protocol.

Operations::

    ping
"""

OPS = ("ping", "ingest")
'''
    stale_service_md = """
# Service

| op | params |
| --- | --- |
| `ping` | none |
| `retired` | gone |
"""
    stale_api_md = """
# API

### class `ServiceClient`

* `ping` — probe the server.
"""
    root = build_tree(tmp_path, protocol=stale_protocol, docs={
        "docs/SERVICE.md": stale_service_md,
        "docs/API.md": stale_api_md,
    })
    report = lint([root], rules=["docs-drift"])
    messages = " | ".join(f.message for f in report.findings)
    assert "Operations:: block drifted: missing ingest" in messages
    assert "missing ingest" in messages and "stale retired" in messages
    assert "no wrapper for op 'ingest'" in messages


def test_project_rules_noop_without_service_tree(tmp_path):
    (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
    report = lint(
        [tmp_path],
        rules=["ops-surface", "ops-idempotent", "docs-drift"],
    )
    assert report.findings == []


# ---------------------------------------------------------------------------
# the real tree: the CI gate
# ---------------------------------------------------------------------------


def test_real_tree_is_clean():
    report = lint([REPO / "src", REPO / "tools"])
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"lint findings on the real tree:\n{rendered}"
    assert report.exit_code == 0
    # the deliberate suppressions carry reasons
    assert report.suppressed, "expected the documented noqa sites"
    assert all(s["reason"] for s in report.suppressed)


def test_real_tree_op_tables_partition_exactly():
    from repro.service.client import IDEMPOTENT_OPS, MUTATING_OPS
    from repro.service.cluster import (
        _BROADCAST_OPS,
        _ROUTED_OPS,
        _SESSION_OPS,
    )
    from repro.service.protocol import OPS

    ops = set(OPS)
    assert IDEMPOTENT_OPS | MUTATING_OPS == ops
    assert not (IDEMPOTENT_OPS & MUTATING_OPS)
    assert _SESSION_OPS <= ops
    assert _BROADCAST_OPS <= ops
    assert _ROUTED_OPS == ops


def test_cli_lint_json_and_exit_codes(tmp_path):
    dirty = tmp_path / "wal.py"
    dirty.write_text(
        "def append(handle, record):\n    handle.write(record)\n",
        encoding="utf-8",
    )
    env_src = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json", str(dirty)],
        capture_output=True, text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "durability-fsync"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json",
         str(REPO / "src"), str(REPO / "tools")],
        capture_output=True, text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert set(payload["rules"]) == FROZEN_RULE_IDS


def test_cli_lint_rules_filter(tmp_path):
    dirty = tmp_path / "anything.py"
    dirty.write_text(
        "def f(x=[]):\n    return hash(x)\n", encoding="utf-8"
    )
    report = lint_paths(
        [dirty],
        checkers=list(FILE_RULES),
        rules=["nondet-hash"],
    )
    assert [f.rule for f in report.findings] == ["nondet-hash"]
