"""Edge cases across the pipeline: degenerate specs, tiny runs, limits."""

from __future__ import annotations

import random

import pytest

from repro.graphs.reachability import reaches
from repro.graphs.two_terminal import TwoTerminalGraph
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.workflow.derivation import DerivationEngine, DerivationPolicy, random_derivation
from repro.workflow.execution import execution_from_derivation
from repro.workflow.grammar import GrammarClass, analyze_grammar
from repro.workflow.specification import make_spec


def chain(names):
    return TwoTerminalGraph.build(
        list(enumerate(names)), [(i, i + 1) for i in range(len(names) - 1)]
    )


@pytest.fixture()
def composite_free_spec():
    """A specification whose start graph is already all-atomic."""
    return make_spec(chain(["s", "a", "b", "t"]), [], name="trivial")


@pytest.fixture()
def single_module_spec():
    """One plain composite with a two-vertex body."""
    return make_spec(
        chain(["s", "X", "t"]), [("X", chain(["sx", "tx"]))], name="single"
    )


class TestCompositeFreeSpec:
    def test_classified_non_recursive(self, composite_free_spec):
        info = analyze_grammar(composite_free_spec)
        assert info.grammar_class is GrammarClass.NON_RECURSIVE

    def test_run_is_the_start_graph(self, composite_free_spec):
        policy = DerivationPolicy(rng=random.Random(0), target_size=10)
        run = random_derivation(composite_free_spec, policy)
        assert run.run_size() == 4
        assert not run.steps

    def test_drl_labels_the_start_graph(self, composite_free_spec):
        policy = DerivationPolicy(rng=random.Random(0), target_size=10)
        run = random_derivation(composite_free_spec, policy)
        scheme = DRL(composite_free_spec)
        labels = scheme.label_derivation(run)
        g = run.graph
        for a in g.vertices():
            for b in g.vertices():
                assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)

    def test_execution_labeling_works(self, composite_free_spec):
        policy = DerivationPolicy(rng=random.Random(0), target_size=10)
        run = random_derivation(composite_free_spec, policy)
        scheme = DRL(composite_free_spec)
        labeler = DRLExecutionLabeler(scheme, mode="name")
        labels = labeler.run(execution_from_derivation(run))
        assert len(labels) == 4


class TestSingleModuleSpec:
    def test_one_step_derivation(self, single_module_spec):
        eng = DerivationEngine(single_module_spec)
        eng.begin()
        target = next(iter(eng.pending))
        eng.expand(target, "X#0")
        run = eng.finish()
        assert run.run_size() == 4  # s, sx, tx, t
        scheme = DRL(single_module_spec)
        labels = scheme.label_derivation(run)
        g = run.graph
        for a in g.vertices():
            for b in g.vertices():
                assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)


class TestMinimalBodies:
    def test_two_vertex_loop_body(self):
        spec = make_spec(
            chain(["s", "LP", "t"]),
            [("LP", chain(["sl", "tl"]))],
            loops=["LP"],
            name="tiny-loop",
        )
        eng = DerivationEngine(spec)
        eng.begin()
        target = next(iter(eng.pending))
        eng.expand(target, "LP#0", copies=5)
        run = eng.finish()
        scheme = DRL(spec)
        labels = scheme.label_derivation(run)
        g = run.graph
        for a in g.vertices():
            for b in g.vertices():
                assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)

    def test_two_vertex_fork_body(self):
        spec = make_spec(
            chain(["s", "FK", "t"]),
            [("FK", chain(["sf", "tf"]))],
            forks=["FK"],
            name="tiny-fork",
        )
        eng = DerivationEngine(spec)
        eng.begin()
        target = next(iter(eng.pending))
        eng.expand(target, "FK#0", copies=4)
        run = eng.finish()
        scheme = DRL(spec)
        labels = scheme.label_derivation(run)
        g = run.graph
        for a in g.vertices():
            for b in g.vertices():
                assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)

    def test_single_copy_loop_and_fork(self):
        # copies=1 still builds the special node with one child
        spec = make_spec(
            chain(["s", "LP", "FK", "t"]),
            [("LP", chain(["sl", "tl"])), ("FK", chain(["sf", "tf"]))],
            loops=["LP"],
            forks=["FK"],
            name="single-copies",
        )
        eng = DerivationEngine(spec)
        eng.begin()
        for target in sorted(eng.pending):
            head = eng.pending[target]
            eng.expand(target, f"{head}#0", copies=1)
        run = eng.finish()
        scheme = DRL(spec)
        labels = scheme.label_derivation(run)
        g = run.graph
        for a in g.vertices():
            for b in g.vertices():
                assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)
        # execution path too
        labeler = DRLExecutionLabeler(scheme, mode="name")
        exe_labels = labeler.run(execution_from_derivation(run))
        assert exe_labels == {v: labels[v] for v in exe_labels}


class TestImmediateRecursionSpec:
    def test_direct_self_recursion(self):
        # A := s A t | s t : A directly induces itself, linear
        spec = make_spec(
            chain(["s", "A", "t"]),
            [("A", chain(["sa", "A", "ta"])), ("A", chain(["sb", "tb"]))],
            name="self-rec",
        )
        info = analyze_grammar(spec)
        assert info.grammar_class is GrammarClass.LINEAR_RECURSIVE
        policy = DerivationPolicy(
            rng=random.Random(1), target_size=80, recursion_continue_prob=0.8
        )
        run = random_derivation(spec, policy, info=info)
        scheme = DRL(spec, info=info)
        labels = scheme.label_derivation(run)
        g = run.graph
        vs = sorted(g.vertices())
        rng = random.Random(2)
        for _ in range(3000):
            a, b = rng.choice(vs), rng.choice(vs)
            assert scheme.query(labels[a], labels[b]) == reaches(g, a, b)
