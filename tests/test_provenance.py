"""Tests for the on-the-fly provenance store."""

from __future__ import annotations

import random

import pytest

from repro.errors import ExecutionError, LabelingError
from repro.graphs.reachability import reaches
from repro.provenance.store import ProvenanceStore
from repro.workflow.execution import execution_from_derivation

from tests.conftest import small_run


def replayed_store(spec, run, rng=None):
    """Feed a recorded execution into a ProvenanceStore, one item per module."""
    store = ProvenanceStore(spec)
    for ins in execution_from_derivation(run, rng):
        inputs = [f"d{p}" for p in sorted(ins.preds)]
        store.record(ins.name, inputs=inputs, outputs=[f"d{ins.vid}"], vid=ins.vid)
    return store


class TestRecording:
    def test_module_runs_recorded_in_order(self, running_spec):
        run = small_run(running_spec, 60, seed=1)
        store = replayed_store(running_spec, run)
        assert len(store.module_runs()) == run.run_size()

    def test_unknown_input_rejected(self, running_spec):
        store = ProvenanceStore(running_spec)
        with pytest.raises(ExecutionError):
            store.record("s0", inputs=["ghost"])

    def test_duplicate_output_rejected(self, running_spec):
        store = ProvenanceStore(running_spec)
        store.record("s0", outputs=["x"])
        with pytest.raises(ExecutionError):
            store.record("L", inputs=["x"], outputs=["x"])

    def test_external_inputs(self, running_spec):
        store = ProvenanceStore(running_spec)
        store.add_external_input("raw")
        with pytest.raises(ExecutionError):
            store.add_external_input("raw")
        assert any(i.name == "raw" for i in store.data_items())


class TestQueries:
    def test_used_matches_graph_reachability(self, running_spec):
        run = small_run(running_spec, 120, seed=2)
        store = replayed_store(running_spec, run)
        g = run.graph
        vs = sorted(g.vertices())
        rng = random.Random(3)
        for _ in range(2000):
            a, b = rng.choice(vs), rng.choice(vs)
            expected = a != b and reaches(g, a, b)
            assert store.used(f"d{a}", f"d{b}") == expected

    def test_depends_is_module_reachability(self, running_spec):
        run = small_run(running_spec, 100, seed=4)
        store = replayed_store(running_spec, run)
        g = run.graph
        order = g.topological_order()
        first, last = order[0], order[-1]
        assert store.depends(first, last)
        assert not store.depends(last, first)

    def test_influenced(self, running_spec):
        run = small_run(running_spec, 100, seed=5)
        store = replayed_store(running_spec, run)
        g = run.graph
        order = g.topological_order()
        assert store.influenced(order[0], f"d{order[-1]}")
        assert not store.influenced(order[-1], f"d{order[0]}")

    def test_external_input_flows_everywhere(self, running_spec):
        run = small_run(running_spec, 60, seed=6)
        store = ProvenanceStore(running_spec)
        store.add_external_input("params")
        for ins in execution_from_derivation(run):
            store.record(
                ins.name,
                inputs=[f"d{p}" for p in sorted(ins.preds)],
                outputs=[f"d{ins.vid}"],
                vid=ins.vid,
            )
        some_output = f"d{run.graph.topological_order()[-1]}"
        assert store.used("params", some_output)
        assert not store.used(some_output, "params")

    def test_unknown_item_rejected(self, running_spec):
        store = ProvenanceStore(running_spec)
        with pytest.raises(LabelingError):
            store.used("a", "b")

    def test_same_module_outputs_not_lineage(self, running_spec):
        store = ProvenanceStore(running_spec)
        store.record("s0", outputs=["x", "y"])
        assert not store.used("x", "y")


class TestPartialRunQueries:
    def test_queries_during_execution(self, running_spec):
        """Provenance questions answered while the workflow is running."""
        run = small_run(running_spec, 80, seed=7)
        store = ProvenanceStore(running_spec)
        seen = []
        for ins in execution_from_derivation(run):
            store.record(
                ins.name,
                inputs=[f"d{p}" for p in sorted(ins.preds)],
                outputs=[f"d{ins.vid}"],
                vid=ins.vid,
            )
            seen.append(ins.vid)
            if len(seen) % 20 == 0:
                a, b = seen[0], seen[-1]
                assert store.depends(a, b) == reaches(run.graph, a, b)

    def test_label_bits_available(self, running_spec):
        run = small_run(running_spec, 60, seed=8)
        store = replayed_store(running_spec, run)
        v = next(iter(run.graph.vertices()))
        assert store.label_bits(v) > 0


class TestWitnessPaths:
    def test_witness_path_is_a_real_path(self, running_spec):
        run = small_run(running_spec, 100, seed=9)
        store = replayed_store(running_spec, run)
        g = run.graph
        order = g.topological_order()
        first, last = order[0], order[-1]
        path = store.witness_path(first, last)
        assert path is not None
        assert path[0] == first and path[-1] == last
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)

    def test_unreachable_pair_returns_none(self, running_spec):
        run = small_run(running_spec, 100, seed=10)
        store = replayed_store(running_spec, run)
        order = run.graph.topological_order()
        assert store.witness_path(order[-1], order[0]) is None

    def test_unknown_vertex_rejected(self, running_spec):
        run = small_run(running_spec, 60, seed=11)
        store = replayed_store(running_spec, run)
        with pytest.raises(LabelingError):
            store.witness_path(10**9, 0)

    def test_item_lineage_chains_items(self, running_spec):
        run = small_run(running_spec, 100, seed=12)
        store = replayed_store(running_spec, run)
        order = run.graph.topological_order()
        first, last = order[0], order[-1]
        lineage = store.item_lineage(f"d{first}", f"d{last}")
        assert lineage is not None
        assert lineage[0] == f"d{first}"
        assert lineage[-1] == f"d{last}"

    def test_item_lineage_none_when_unrelated(self, running_spec):
        run = small_run(running_spec, 100, seed=13)
        store = replayed_store(running_spec, run)
        order = run.graph.topological_order()
        assert store.item_lineage(f"d{order[-1]}", f"d{order[0]}") is None

    def test_witness_agrees_with_depends(self, running_spec):
        run = small_run(running_spec, 80, seed=14)
        store = replayed_store(running_spec, run)
        vs = sorted(run.graph.vertices())
        rng = random.Random(15)
        for _ in range(300):
            a, b = rng.choice(vs), rng.choice(vs)
            path = store.witness_path(a, b)
            assert (path is not None) == store.depends(a, b)
