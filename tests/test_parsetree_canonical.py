"""Tests for the canonical parse tree (Section 4.2)."""

from __future__ import annotations

from repro.parsetree.canonical import CanonicalParseTree
from repro.parsetree.explicit import build_explicit_tree
from repro.workflow.grammar import analyze_grammar

from tests.conftest import small_run
from tests.test_parsetree_explicit import build_running_tree


class TestCanonicalTree:
    def test_one_node_per_instance(self, running_spec):
        run, _ = build_running_tree(running_spec)
        tree = CanonicalParseTree(run)
        assert tree.size() == len(run.all_instances())

    def test_contexts_cover_run(self, running_spec):
        run, _ = build_running_tree(running_spec)
        tree = CanonicalParseTree(run)
        for v in run.graph.vertices():
            node, tv = tree.context_of(v)
            template = running_spec.graph(node.instance.key)
            assert template.name(tv) == run.graph.name(v)

    def test_depth_tracks_recursion(self, running_spec):
        shallow_run, _ = build_running_tree(
            running_spec, loop_copies=1, fork_copies=1, recursion_depth=1
        )
        deep_run, _ = build_running_tree(
            running_spec, loop_copies=1, fork_copies=1, recursion_depth=6
        )
        shallow = CanonicalParseTree(shallow_run)
        deep = CanonicalParseTree(deep_run)
        assert deep.depth() > shallow.depth()

    def test_explicit_tree_never_deeper_than_canonical_plus_specials(
        self, running_spec
    ):
        # The explicit tree flattens recursion, so on recursion-heavy runs
        # it is strictly shallower than the canonical tree.
        run, explicit = build_running_tree(
            running_spec, loop_copies=1, fork_copies=1, recursion_depth=8
        )
        canonical = CanonicalParseTree(run)
        assert explicit.depth() < canonical.depth()

    def test_random_run_consistency(self, bioaid_spec):
        info = analyze_grammar(bioaid_spec)
        run = small_run(bioaid_spec, 150, seed=9)
        canonical = CanonicalParseTree(run)
        explicit = build_explicit_tree(run, info=info)
        # both trees agree on context template vertices
        for v in run.graph.vertices():
            _, tv_c = canonical.context_of(v)
            _, tv_e = explicit.context_of(v)
            assert tv_c == tv_e
