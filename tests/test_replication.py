"""Tests for WAL-shipping replication (repro.service.replication).

The contract under test, end to end:

* a replica applies the primary's shipped WAL into its *own* durable
  store and serves BFS-correct reads, with staleness wire-visible as
  ``replica_lag`` on every response;
* promotion bumps the epoch durably before the first write, and the
  fenced old primary can never acknowledge a write again (no zombie
  acks, no two primaries on one epoch);
* ``--keep-generations`` retains checkpoint history and ``as_of``
  answers against it; torn-tail recovery reports the bytes dropped;
* the failpoint crash matrix: a real server crashed *at every
  registered WAL/checkpoint failpoint* recovers every acknowledged
  insertion.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.errors import ProtocolError, ServiceError
from repro.graphs.reachability import reaches
from repro.service import ServiceClient
from repro.service.protocol import (
    Request,
    insertions_to_wire,
    raise_for_response,
)
from repro.service.replication import (
    ReplicationHub,
    choose_promotion_target,
    probe_replication,
)
from repro.service.server import ReproServer, ReproService
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation


def make_execution(spec, size=120, seed=0):
    run = sample_run(spec, size, random.Random(seed))
    return run, execution_from_derivation(run)


def call(service, op, **params):
    """Drive one op through a ReproService in process."""
    return raise_for_response(
        service.handle(Request(op=op, params=params, id=1))
    )


def start_server(service):
    server = ReproServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def stop_server(server):
    server.shutdown()
    server.server_close()
    server.service.close()


def wait_until(predicate, timeout=20.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def applied_position(port):
    info = probe_replication(("127.0.0.1", port))
    if info is None:
        return -1
    return int(info.get("applied", -1))


@pytest.fixture()
def pair(tmp_path):
    """A durable primary and one live replica, both over TCP."""
    primary = start_server(
        ReproService(data_dir=str(tmp_path / "pri"), fsync="never")
    )
    replica = start_server(
        ReproService(
            data_dir=str(tmp_path / "rep"),
            fsync="never",
            replicate_from=("127.0.0.1", primary.port),
            replica_id="r1",
        )
    )
    yield primary, replica
    stop_server(replica)
    stop_server(primary)


# ---------------------------------------------------------------------------
# the hub: ring, long-poll, reset, acks
# ---------------------------------------------------------------------------


class TestReplicationHub:
    @pytest.fixture()
    def service(self, tmp_path):
        service = ReproService(data_dir=str(tmp_path / "d"), fsync="never")
        yield service
        service.close()

    def test_negative_from_seq_requests_reset(self, service):
        result = call(service, "repl_subscribe", from_seq=-1)
        assert result["reset"] is True
        assert result["snapshot"] == []
        assert result["seq"] == 0

    def test_records_ship_past_the_subscriber_position(
        self, service, running_spec
    ):
        _, execution = make_execution(running_spec, size=40, seed=1)
        call(service, "create_session", name="s", spec="running-example")
        call(
            service,
            "ingest",
            session="s",
            insertions=insertions_to_wire(execution.insertions[:10]),
        )
        result = call(service, "repl_subscribe", from_seq=0)
        kinds = [record["kind"] for record in result["records"]]
        assert kinds == ["create", "ingest"]
        assert result["seq"] == 2
        assert result["epoch"] == service.store.epoch
        # a caught-up subscriber long-polls and times out empty
        again = call(
            service, "repl_subscribe", from_seq=result["seq"], wait=0.05
        )
        assert again["records"] == []

    def test_fallen_off_the_ring_forces_reset_with_snapshot(
        self, service, running_spec
    ):
        _, execution = make_execution(running_spec, size=60, seed=2)
        call(service, "create_session", name="s", spec="running-example")
        hub = ReplicationHub(
            service.manager, service.store, ring_capacity=16
        )
        session = service.manager.get("s")
        for event in execution.insertions[:20]:
            hub.publish(session, 0, session.version,
                        insertions_to_wire([event]))
        result = hub.subscribe(from_seq=0)
        assert result["reset"] is True
        names = [entry["session"] for entry in result["snapshot"]]
        assert names == ["s"]

    def test_ack_and_wait_covered(self, service):
        hub = ReplicationHub(
            service.manager, service.store, min_acks=1, ack_timeout=0.1
        )
        with pytest.raises(ServiceError, match="replica"):
            hub.wait_covered(0, timeout=0.05)
        assert hub.ack("r1", 3)["acked"] == 3
        hub.ack("r1", 1)  # acks are monotone: a stale ack never regresses
        assert hub.lag_table()["replicas"]["r1"]["acked"] == 3
        hub.wait_covered(3, timeout=0.05)  # returns, no raise
        with pytest.raises(ServiceError):
            hub.wait_covered(4, timeout=0.05)

    def test_higher_epoch_ack_fences_the_node(self, service):
        hub = ReplicationHub(service.manager, service.store)
        with pytest.raises(ServiceError, match="fenced"):
            hub.ack("r1", 0, epoch=service.store.epoch + 1)
        assert service.store.fenced


# ---------------------------------------------------------------------------
# primary -> replica over TCP
# ---------------------------------------------------------------------------


class TestReplicaServesReads:
    def test_replica_answers_match_bfs_and_carry_lag(
        self, pair, running_spec
    ):
        primary, replica = pair
        run, execution = make_execution(running_spec, size=120, seed=3)
        with ServiceClient("127.0.0.1", primary.port) as writer:
            writer.create_session("demo", "running-example")
            writer.ingest("demo", execution.insertions)
        assert wait_until(lambda: applied_position(replica.port) >= 2)

        vids = sorted(run.graph.vertices())
        rng = random.Random(7)
        pairs = [(rng.choice(vids), rng.choice(vids)) for _ in range(150)]
        with ServiceClient("127.0.0.1", replica.port) as reader:
            assert reader.list_sessions() == ["demo"]
            answers = reader.query_batch("demo", pairs)
            assert reader.last_replica_lag is not None
            assert reader.last_replica_lag["role"] == "replica"
            assert reader.last_replica_lag["applied"] >= 2
        assert answers == [reaches(run.graph, a, b) for a, b in pairs]

    def test_replica_refuses_writes(self, pair, running_spec):
        primary, replica = pair
        _, execution = make_execution(running_spec, size=30, seed=4)
        with ServiceClient("127.0.0.1", replica.port) as reader:
            with pytest.raises(ServiceError, match="read replica"):
                reader.create_session("x", "running-example")
        with ServiceClient("127.0.0.1", primary.port) as writer:
            writer.create_session("demo", "running-example")
            writer.ingest("demo", execution.insertions[:10])
        assert wait_until(lambda: applied_position(replica.port) >= 2)
        with ServiceClient("127.0.0.1", replica.port) as reader:
            with pytest.raises(ServiceError, match="read replica"):
                reader.ingest("demo", execution.insertions[10:12])
            with pytest.raises(ServiceError, match="read replica"):
                reader.close_session("demo")

    def test_session_close_replicates(self, pair, running_spec):
        primary, replica = pair
        with ServiceClient("127.0.0.1", primary.port) as writer:
            writer.create_session("gone", "running-example")
            assert wait_until(lambda: applied_position(replica.port) >= 1)
            writer.close_session("gone")

        def closed_everywhere():
            with ServiceClient("127.0.0.1", replica.port) as reader:
                return reader.list_sessions() == []

        assert wait_until(closed_everywhere)

    def test_late_replica_bootstraps_from_snapshot(
        self, pair, running_spec, tmp_path
    ):
        # a replica started AFTER the primary ingested must reset onto
        # a full snapshot (its from_seq=-1 never saw the ring)
        primary, _ = pair
        run, execution = make_execution(running_spec, size=80, seed=5)
        with ServiceClient("127.0.0.1", primary.port) as writer:
            writer.create_session("old", "running-example")
            writer.ingest("old", execution.insertions)
        late = start_server(
            ReproService(
                data_dir=str(tmp_path / "late"),
                fsync="never",
                replicate_from=("127.0.0.1", primary.port),
                replica_id="late",
            )
        )
        try:
            assert wait_until(lambda: applied_position(late.port) > 0)
            vids = sorted(run.graph.vertices())
            pairs = [(vids[0], v) for v in vids[:40]]
            with ServiceClient("127.0.0.1", late.port) as reader:
                answers = reader.query_batch("old", pairs)
            assert answers == [reaches(run.graph, a, b) for a, b in pairs]
        finally:
            stop_server(late)


# ---------------------------------------------------------------------------
# promotion and epoch fencing
# ---------------------------------------------------------------------------


class TestPromotion:
    def test_promote_accepts_writes_and_fences_the_zombie(
        self, pair, running_spec
    ):
        primary, replica = pair
        run, execution = make_execution(running_spec, size=100, seed=6)
        events = execution.insertions
        with ServiceClient("127.0.0.1", primary.port) as writer:
            writer.create_session("demo", "running-example")
            writer.ingest("demo", events[:50])
            primary_epoch = probe_replication(
                ("127.0.0.1", primary.port)
            )["epoch"]
        assert wait_until(lambda: applied_position(replica.port) >= 2)

        with ServiceClient("127.0.0.1", replica.port) as client:
            result = client.promote()
            assert result["promoted"] is True
            assert result["epoch"] == primary_epoch + 1
            assert "demo" in result["sessions"]
            # the promoted node is now writable and finishes the run
            client.ingest("demo", events[50:])
            vids = sorted(run.graph.vertices())
            rng = random.Random(11)
            pairs = [
                (rng.choice(vids), rng.choice(vids)) for _ in range(100)
            ]
            answers = client.query_batch("demo", pairs)
            assert answers == [reaches(run.graph, a, b) for a, b in pairs]
            info = probe_replication(("127.0.0.1", replica.port))
            assert info["role"] == "primary"
            assert info["epoch"] == primary_epoch + 1

        # the old primary, once contacted at the higher epoch, fences
        # itself: no further append can be acknowledged on its timeline
        with ServiceClient("127.0.0.1", primary.port) as zombie:
            with pytest.raises(ServiceError, match="fenced"):
                zombie.repl_ack("r1", 0, epoch=primary_epoch + 1)
            with pytest.raises(ServiceError, match="fenced"):
                zombie.ingest("demo", events[50:52])

    def test_promote_rejects_stale_epoch_and_plain_primary(self, pair):
        primary, replica = pair
        with ServiceClient("127.0.0.1", primary.port) as client:
            with pytest.raises(ServiceError, match="already a primary"):
                client.promote()
        with ServiceClient("127.0.0.1", replica.port) as client:
            current = probe_replication(
                ("127.0.0.1", replica.port)
            )["epoch"]
            with pytest.raises(ServiceError, match="must exceed"):
                client.promote(epoch=current)

    def test_choose_promotion_target_prefers_most_applied(
        self, pair, running_spec, tmp_path
    ):
        primary, replica = pair
        _, execution = make_execution(running_spec, size=60, seed=8)
        with ServiceClient("127.0.0.1", primary.port) as writer:
            writer.create_session("demo", "running-example")
            writer.ingest("demo", execution.insertions)
        assert wait_until(lambda: applied_position(replica.port) >= 2)
        endpoints = [
            ("127.0.0.1", primary.port),   # not a replica: skipped
            ("127.0.0.1", replica.port),
            ("127.0.0.1", 1),              # unreachable: skipped
        ]
        assert choose_promotion_target(endpoints) == (
            "127.0.0.1",
            replica.port,
        )


# ---------------------------------------------------------------------------
# time travel + retention
# ---------------------------------------------------------------------------


class TestTimeTravel:
    def test_as_of_answers_from_a_retained_generation(
        self, tmp_path, running_spec
    ):
        run, execution = make_execution(running_spec, size=80, seed=9)
        events = execution.insertions
        service = ReproService(
            data_dir=str(tmp_path / "d"),
            fsync="never",
            keep_generations=4,
        )
        try:
            call(service, "create_session", name="s",
                 spec="running-example")
            call(service, "ingest", session="s",
                 insertions=insertions_to_wire(events[:30]))
            first = call(service, "snapshot", session="s")["version"]
            call(service, "ingest", session="s",
                 insertions=insertions_to_wire(events[30:]))
            call(service, "snapshot", session="s")

            early = [e.vid for e in events[:30]]
            late = [e.vid for e in events[30:]]
            # vertices inserted after the retained generation are
            # absent in the as-of view but present live
            assert call(service, "query", session="s",
                        source=late[0], target=late[0])["answer"] is True
            with pytest.raises(Exception):
                call(service, "query", session="s", source=late[0],
                     target=late[0], as_of=first)
            probe = [[early[0], v] for v in early]
            got = call(service, "query_batch", session="s",
                       pairs=probe, as_of=first)
            live = call(service, "query_batch", session="s",
                        pairs=probe)
            # insertions only ever extend the graph downward, so the
            # as-of view agrees with the live one on surviving pairs
            assert got["answers"] == live["answers"]
        finally:
            service.close()

    def test_keep_generations_bounds_retention(
        self, tmp_path, running_spec
    ):
        _, execution = make_execution(running_spec, size=80, seed=10)
        events = execution.insertions
        service = ReproService(
            data_dir=str(tmp_path / "d"),
            fsync="never",
            keep_generations=2,
        )
        try:
            call(service, "create_session", name="s",
                 spec="running-example")
            versions = []
            for lo in range(0, 80, 20):
                call(service, "ingest", session="s",
                     insertions=insertions_to_wire(events[lo:lo + 20]))
                versions.append(
                    call(service, "snapshot", session="s")["version"]
                )
            retained = service.store.generations("s")
            assert retained == sorted(versions)[-2:]
            # a collected generation is a structured error, not a crash
            with pytest.raises(Exception):
                call(service, "query", session="s",
                     source=events[0].vid, target=events[0].vid,
                     as_of=versions[0])
        finally:
            service.close()

    def test_as_of_rejects_non_integers(self, tmp_path, running_spec):
        _, execution = make_execution(running_spec, size=20, seed=11)
        service = ReproService(
            data_dir=str(tmp_path / "d"), fsync="never"
        )
        try:
            call(service, "create_session", name="s",
                 spec="running-example")
            call(service, "ingest", session="s",
                 insertions=insertions_to_wire(execution.insertions))
            with pytest.raises(ProtocolError, match="as_of"):
                call(service, "query", session="s",
                     source=execution.insertions[0].vid,
                     target=execution.insertions[0].vid,
                     as_of="latest")
        finally:
            service.close()


# ---------------------------------------------------------------------------
# torn-tail detail reporting
# ---------------------------------------------------------------------------


class TestTornTailDetails:
    def test_recover_info_reports_bytes_dropped_and_last_good_seq(
        self, tmp_path, running_spec
    ):
        _, execution = make_execution(running_spec, size=60, seed=12)
        events = execution.insertions
        service = ReproService(data_dir=str(tmp_path / "data"))
        call(service, "create_session", name="s1",
             spec="running-example")
        call(service, "ingest", session="s1",
             insertions=insertions_to_wire(events[:20]))
        call(service, "ingest", session="s1",
             insertions=insertions_to_wire(events[20:40]))
        service.close()
        wal_path = next((tmp_path / "data").glob("s-*/wal.jsonl"))
        intact = wal_path.read_bytes()
        wal_path.write_bytes(intact[:-9])

        revived = ReproService(data_dir=str(tmp_path / "data"))
        try:
            info = call(revived, "recover_info")
            report = next(
                r for r in info["recovered"] if r.get("torn_tail")
            )
            assert report["torn_bytes_dropped"] > 0
            assert report["torn_last_good_seq"] == 0
        finally:
            revived.close()


# ---------------------------------------------------------------------------
# the failpoint crash matrix: crash a real server at every registered
# WAL/checkpoint failpoint; recovery must hold every acknowledged write
# ---------------------------------------------------------------------------


CRASH_MATRIX = [
    "wal.pre_append=crash@4",
    "wal.pre_fsync=crash@4",
    "wal.post_append=crash@4",
    "wal.pre_truncate=crash",
    "ckpt.pre_stage=crash",
    "ckpt.pre_flip=crash",
    "ckpt.post_flip=crash",
    "ckpt.pre_gc=crash",
]


class TestFailpointCrashMatrix:
    @pytest.mark.parametrize(
        "spec", CRASH_MATRIX, ids=[s.split("=")[0] for s in CRASH_MATRIX]
    )
    def test_crash_at_failpoint_loses_no_acknowledged_write(
        self, spec, tmp_path, running_spec
    ):
        from repro.loadgen.crash import (
            _free_port,
            _spawn_server,
            _wait_ready,
        )

        run, execution = make_execution(running_spec, size=80, seed=13)
        events = execution.insertions
        data_dir = str(tmp_path / "data")
        port = _free_port()
        process = _spawn_server(
            port, data_dir, "always", extra=["--failpoints", spec]
        )
        acked = []
        session_acked = False
        try:
            _wait_ready(port, process)
            try:
                with ServiceClient("127.0.0.1", port, timeout=10.0,
                                   reconnect=False) as client:
                    client.create_session("s", "running-example")
                    session_acked = True
                    for lo in range(0, len(events), 4):
                        batch = events[lo:lo + 4]
                        client.ingest("s", batch)
                        acked.extend(event.vid for event in batch)
                        if lo == 16:
                            # roll a checkpoint mid-stream so the
                            # ckpt.*/wal.pre_truncate points get hit
                            client.snapshot("s")
            except (OSError, ProtocolError, ServiceError):
                pass  # the armed crash severed the connection
            assert wait_until(lambda: process.poll() is not None, 15.0), \
                f"failpoint {spec} never crashed the server"
            assert process.returncode == 170  # os._exit, not an error
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

        # restart over the same data dir with nothing armed: every
        # acknowledged write must have survived the crash
        port = _free_port()
        revived = _spawn_server(port, data_dir, "always")
        try:
            _wait_ready(port, revived)
            with ServiceClient("127.0.0.1", port, timeout=10.0) as client:
                if not session_acked:
                    return
                assert "s" in client.list_sessions()
                if acked:
                    present = client.query_batch(
                        "s", [(vid, vid) for vid in acked]
                    )
                    lost = [
                        vid for vid, ok in zip(acked, present) if not ok
                    ]
                    assert lost == [], f"acked writes lost: {lost}"
                    # answers over the acked prefix stay BFS-correct
                    rng = random.Random(14)
                    probe = [
                        (rng.choice(acked), rng.choice(acked))
                        for _ in range(50)
                    ]
                    answers = client.query_batch("s", probe)
                    assert answers == [
                        reaches(run.graph, a, b) for a, b in probe
                    ]
        finally:
            revived.terminate()
            revived.wait(timeout=15)
