"""Figure 17: max label length vs sub-workflow size (synthetic family)."""

from __future__ import annotations

from repro.bench.figures import fig17_varying_size

from benchmarks.conftest import attach_rows


def test_fig17_series(benchmark, bench_config):
    table = benchmark.pedantic(
        fig17_varying_size, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    assert [r["sub_workflow_size"] for r in rows] == [10, 20, 40, 80, 160]
    # logarithmic growth in sub-workflow size: 16x size costs bounded bits
    total_growth = rows[-1]["max_bits"] - rows[0]["max_bits"]
    assert total_growth < 60
