"""Figure 18: max label length vs nesting depth (synthetic family)."""

from __future__ import annotations

from repro.bench.figures import fig18_varying_depth

from benchmarks.conftest import attach_rows


def test_fig18_series(benchmark, bench_config):
    table = benchmark.pedantic(
        fig18_varying_depth, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    assert [r["nesting_depth"] for r in rows] == [5, 10, 15, 20, 25]
    # linear growth in depth: strictly increasing by a roughly constant step
    series = [r["max_bits"] for r in rows]
    assert all(b > a for a, b in zip(series, series[1:]))
    steps = [b - a for a, b in zip(series, series[1:])]
    assert max(steps) <= 4 * min(steps) + 8
