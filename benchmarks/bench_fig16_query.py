"""Figure 16: BioAID query time for DRL(TCL) vs DRL(BFS)."""

from __future__ import annotations

import random

from repro.bench.figures import fig16_query_time
from repro.datasets import bioaid
from repro.labeling.drl import DRL
from repro.workflow.derivation import sample_run

from benchmarks.conftest import attach_rows


def test_fig16_series(benchmark, bench_config):
    table = benchmark.pedantic(
        fig16_query_time, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    # near-constant query time: largest run at most ~6x the smallest
    for column in ("drl_tcl_us", "drl_bfs_us"):
        series = [r[column] for r in rows]
        assert max(series) <= 6 * min(series) + 2


def _labels(skeleton: str):
    spec = bioaid()
    scheme = DRL(spec, skeleton=skeleton)
    run = sample_run(spec, 2000, random.Random(16))
    labels = scheme.label_derivation(run)
    vids = sorted(run.graph.vertices())
    rng = random.Random(0)
    pairs = [
        (labels[rng.choice(vids)], labels[rng.choice(vids)])
        for _ in range(1000)
    ]
    return scheme, pairs


def test_query_drl_tcl(benchmark):
    scheme, pairs = _labels("tcl")

    def run_queries():
        for a, b in pairs:
            scheme.query(a, b)

    benchmark(run_queries)


def test_query_drl_bfs(benchmark):
    scheme, pairs = _labels("bfs")

    def run_queries():
        for a, b in pairs:
            scheme.query(a, b)

    benchmark(run_queries)
