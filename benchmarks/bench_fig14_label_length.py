"""Figure 14: BioAID label length vs run size.

The benchmarked operation is the full label-length experiment (sampled
runs per size plus measurement); the regenerated series is attached to
the benchmark's extra info.
"""

from __future__ import annotations

from repro.bench.figures import fig14_label_length

from benchmarks.conftest import attach_rows


def test_fig14_label_length(benchmark, bench_config):
    table = benchmark.pedantic(
        fig14_label_length, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    assert len(rows) >= 2
    # logarithmic shape: doubling the run size costs only a few bits
    for prev, cur in zip(rows, rows[1:]):
        growth = cur["max_bits"] - prev["max_bits"]
        assert growth < 15, f"label length not logarithmic: +{growth} bits"
    # average stays below maximum
    for row in rows:
        assert row["avg_bits"] <= row["max_bits"]
