"""Figure 21: construction time, static SKL vs dynamic DRL."""

from __future__ import annotations

import random

from repro.bench.figures import fig21_construction_vs_skl
from repro.datasets import bioaid
from repro.labeling.skl import SKL
from repro.workflow.derivation import sample_run

from benchmarks.conftest import attach_rows


def test_fig21_series(benchmark, bench_config):
    table = benchmark.pedantic(
        fig21_construction_vs_skl, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    # all three schemes scale linearly; SKL builds the simplest labels
    for row in rows:
        assert row["skl_ms"] <= row["drl_execution_ms"] * 3


def test_skl_labeling_2k(benchmark):
    spec = bioaid(recursive=False)
    skl = SKL(spec, skeleton="tcl")
    run = sample_run(spec, 2000, random.Random(21))
    benchmark(lambda: skl.label_run(run))
