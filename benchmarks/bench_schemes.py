"""Registry-driven cross-scheme comparison benchmark.

Iterates every scheme in :mod:`repro.schemes.registry` over a common
graph family (BioAID-like non-recursive runs, plus one path-grammar run
so the path-position scheme participates) and measures, per scheme:

* construction time (ms) -- insertion replay for dynamic schemes,
  whole-graph build for static ones;
* query throughput (queries/sec over sampled vertex pairs);
* total and max label storage (bits).

Schemes that cannot label a workload are *recorded* with their skip
reason (SKL on recursive grammars, path-position on non-path runs, the
tree transform hitting its blow-up guard), never silently dropped.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_schemes.py --benchmark-only

or standalone, which also writes ``BENCH_schemes.json``::

    PYTHONPATH=src python benchmarks/bench_schemes.py
"""

from __future__ import annotations

import json
import random
import time
from typing import Dict, List

from repro.bench.harness import build_registry_schemes
from repro.datasets import bioaid, fig12_path_grammar
from repro.schemes import Workload
from repro.schemes import registry as scheme_registry
from repro.workflow.derivation import sample_run

RUN_SIZES = (500, 1000, 2000)
PATH_RUN_SIZE = 300
QUERY_PAIRS = 3000
OUTPUT = "BENCH_schemes.json"


def _workloads() -> List[Dict[str, object]]:
    """The common graph family every registered scheme is measured on.

    Rows are seeded from ``(family, size)`` -- seeding from the bare
    size would replay the *same* RNG stream for two families that
    happen to share a run size, correlating rows that are supposed to
    be independent samples.
    """
    families = []
    spec = bioaid(recursive=False)
    for size in RUN_SIZES:
        run = sample_run(
            spec, size, random.Random(f"bioaid-norec:{size}")
        )
        families.append(
            {
                "family": "bioaid-norec",
                "run_size": run.run_size(),
                "workload": Workload.from_run(spec, run),
            }
        )
    path_spec = fig12_path_grammar()
    path_run = sample_run(
        path_spec,
        PATH_RUN_SIZE,
        random.Random(f"fig12-path:{PATH_RUN_SIZE}"),
    )
    families.append(
        {
            "family": "fig12-path",
            "run_size": path_run.run_size(),
            "workload": Workload.from_run(path_spec, path_run),
        }
    )
    return families


def _measure(entry: Dict[str, object]) -> List[Dict[str, object]]:
    """One row per registered scheme on one workload."""
    workload: Workload = entry["workload"]
    graph = workload.graph
    vertices = sorted(graph.vertices())
    rng = random.Random(11)
    pairs = [
        (rng.choice(vertices), rng.choice(vertices))
        for _ in range(QUERY_PAIRS)
    ]
    rows: List[Dict[str, object]] = []
    for build in build_registry_schemes(workload):
        row: Dict[str, object] = {
            "family": entry["family"],
            "run_size": entry["run_size"],
            "scheme": build.name,
        }
        if not build.built:
            row["skip"] = build.skip_reason
            rows.append(row)
            continue
        scheme = build.scheme
        started = time.perf_counter()
        for a, b in pairs:
            scheme.reaches(a, b)
        query_seconds = time.perf_counter() - started
        row.update(
            {
                "build_ms": build.seconds * 1e3,
                "queries_per_sec": len(pairs) / query_seconds,
                "total_bits": scheme.total_bits(),
                "max_bits": max(
                    scheme.label_bits_of(v) for v in vertices
                ),
                "exact": scheme.capabilities.exact,
                "dynamic": scheme.capabilities.dynamic,
            }
        )
        rows.append(row)
    return rows


def _all_rows() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for entry in _workloads():
        rows.extend(_measure(entry))
    return rows


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def test_scheme_comparison_rows(benchmark):
    rows = benchmark.pedantic(_all_rows, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [
        {k: str(v) for k, v in row.items()} for row in rows
    ]
    measured = [row for row in rows if "skip" not in row]
    # every registered scheme must be measured on at least one workload
    covered = {row["scheme"] for row in measured}
    assert covered == set(scheme_registry.available())
    # exact answers come from every scheme, so throughput is comparable
    for row in measured:
        assert row["queries_per_sec"] > 0
        assert row["total_bits"] > 0


def test_drl_beats_naive_storage(benchmark):
    spec = bioaid(recursive=False)
    run = sample_run(spec, 2000, random.Random(3))
    workload = Workload.from_run(spec, run)

    def build_both():
        return {
            b.name: b.scheme
            for b in build_registry_schemes(workload, names=["drl", "naive"])
        }

    built = benchmark.pedantic(build_both, rounds=1, iterations=1)
    assert built["drl"].total_bits() < built["naive"].total_bits() / 4


# ---------------------------------------------------------------------------
# standalone report
# ---------------------------------------------------------------------------


def main() -> int:
    rows = _all_rows()
    print(
        f"{'family':<14} {'n':>6} {'scheme':<15} {'build_ms':>9} "
        f"{'kq/s':>8} {'total_bits':>11} {'max_bits':>9}"
    )
    for row in rows:
        if "skip" in row:
            print(
                f"{row['family']:<14} {row['run_size']:>6} "
                f"{row['scheme']:<15} skipped: {row['skip']}"
            )
            continue
        print(
            f"{row['family']:<14} {row['run_size']:>6} {row['scheme']:<15} "
            f"{row['build_ms']:>9.1f} {row['queries_per_sec'] / 1e3:>8.1f} "
            f"{row['total_bits']:>11} {row['max_bits']:>9}"
        )
    document = {
        "benchmark": "schemes",
        "query_pairs": QUERY_PAIRS,
        "schemes": scheme_registry.describe(),
        "rows": rows,
    }
    with open(OUTPUT, "w") as handle:
        json.dump(document, handle, indent=2)
    print(f"\nwrote {OUTPUT}")
    measured = {row["scheme"] for row in rows if "skip" not in row}
    missing = set(scheme_registry.available()) - measured
    if missing:
        print(f"ERROR: schemes never measured on any workload: {missing}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
