"""Registry-driven cross-scheme comparison benchmark.

Iterates every scheme in :mod:`repro.schemes.registry` over a common
graph family (BioAID-like non-recursive runs, plus one path-grammar run
so the path-position scheme participates) and measures, per scheme:

* construction time (ms) -- insertion replay for dynamic schemes,
  whole-graph build for static ones -- and label-build throughput
  (labels/sec, what the ingest path pays per vertex);
* query latency: ``query_ns_per_op`` for single-pair ``reaches`` calls
  and ``batch_query_ns_per_op`` for the ``query_many`` batch kernel
  (equal to the per-pair number for schemes without one);
* total and max label storage (bits).

For drl the report also carries a ``drl_packed_vs_legacy`` section:
the packed integer representation (the default) against the reference
entry-tuple representation (``packed=False``) on the same workload and
pairs, with the speedup ratios the ROADMAP's "fast as the hardware
allows" line is judged on.  The two representations must *answer*
identically -- that is asserted here and property-tested in
``tests/test_packed_equivalence.py``.

Schemes that cannot label a workload are *recorded* with their skip
reason (SKL on recursive grammars, path-position on non-path runs, the
tree transform hitting its blow-up guard), never silently dropped.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_schemes.py --benchmark-only

or standalone, which also writes ``BENCH_schemes.json``::

    PYTHONPATH=src python benchmarks/bench_schemes.py
"""

from __future__ import annotations

import contextlib
import gc
import json
import random
import time
from typing import Dict, List

from repro.bench.harness import build_registry_schemes
from repro.datasets import bioaid, fig12_path_grammar
from repro.schemes import Workload
from repro.schemes import registry as scheme_registry
from repro.workflow.derivation import sample_run

RUN_SIZES = (500, 1000, 2000)
PATH_RUN_SIZE = 300
QUERY_PAIRS = 3000
COMPARISON_PAIRS = 20_000
OUTPUT = "BENCH_schemes.json"


@contextlib.contextmanager
def _gc_paused():
    """Suspend the collector while timing: ns/op numbers should show
    the kernels, not a collection that happened to land mid-loop."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def best_seconds(fn, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall time of ``fn()`` with the GC paused."""
    best = float("inf")
    with _gc_paused():
        for _ in range(repeat):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
    return best


def _workloads() -> List[Dict[str, object]]:
    """The common graph family every registered scheme is measured on.

    Rows are seeded from ``(family, size)`` -- seeding from the bare
    size would replay the *same* RNG stream for two families that
    happen to share a run size, correlating rows that are supposed to
    be independent samples.
    """
    families = []
    spec = bioaid(recursive=False)
    for size in RUN_SIZES:
        run = sample_run(
            spec, size, random.Random(f"bioaid-norec:{size}")
        )
        families.append(
            {
                "family": "bioaid-norec",
                "run_size": run.run_size(),
                "workload": Workload.from_run(spec, run),
            }
        )
    path_spec = fig12_path_grammar()
    path_run = sample_run(
        path_spec,
        PATH_RUN_SIZE,
        random.Random(f"fig12-path:{PATH_RUN_SIZE}"),
    )
    families.append(
        {
            "family": "fig12-path",
            "run_size": path_run.run_size(),
            "workload": Workload.from_run(path_spec, path_run),
        }
    )
    return families


def _measure(entry: Dict[str, object]) -> List[Dict[str, object]]:
    """One row per registered scheme on one workload."""
    workload: Workload = entry["workload"]
    graph = workload.graph
    vertices = sorted(graph.vertices())
    rng = random.Random(11)
    pairs = [
        (rng.choice(vertices), rng.choice(vertices))
        for _ in range(QUERY_PAIRS)
    ]
    rows: List[Dict[str, object]] = []
    for build in build_registry_schemes(workload):
        row: Dict[str, object] = {
            "family": entry["family"],
            "run_size": entry["run_size"],
            "scheme": build.name,
        }
        if not build.built:
            row["skip"] = build.skip_reason
            rows.append(row)
            continue
        scheme = build.scheme
        reaches = scheme.reaches

        def _single() -> None:
            for a, b in pairs:
                reaches(a, b)

        query_seconds = best_seconds(_single)
        batch_seconds = best_seconds(lambda: scheme.query_many(pairs))
        row.update(
            {
                "build_ms": build.seconds * 1e3,
                "build_labels_per_sec": len(vertices) / build.seconds
                if build.seconds
                else None,
                "queries_per_sec": len(pairs) / query_seconds,
                "query_ns_per_op": query_seconds / len(pairs) * 1e9,
                "batch_query_ns_per_op": batch_seconds / len(pairs) * 1e9,
                "total_bits": scheme.total_bits(),
                "max_bits": max(
                    scheme.label_bits_of(v) for v in vertices
                ),
                "exact": scheme.capabilities.exact,
                "dynamic": scheme.capabilities.dynamic,
                "batch_kernel": scheme.capabilities.batch,
            }
        )
        rows.append(row)
    return rows


def _packed_vs_legacy(repeat: int = 5) -> Dict[str, object]:
    """Packed vs reference drl on the largest bioaid workload.

    Equal answers are asserted; CI gates on that, never on the ratio.
    """
    spec = bioaid(recursive=False)
    size = RUN_SIZES[-1]
    run = sample_run(spec, size, random.Random(f"bioaid-norec:{size}"))
    workload = Workload.from_run(spec, run)
    vertices = sorted(workload.graph.vertices())
    rng = random.Random(23)
    pairs = [
        (rng.choice(vertices), rng.choice(vertices))
        for _ in range(COMPARISON_PAIRS)
    ]

    def _timings(packed: bool) -> Dict[str, float]:
        scheme = scheme_registry.build("drl", workload, packed=packed)
        reaches = scheme.reaches

        def single() -> None:
            for a, b in pairs:
                reaches(a, b)

        return {
            "query_ns_per_op": best_seconds(single, repeat)
            / len(pairs)
            * 1e9,
            "batch_query_ns_per_op": best_seconds(
                lambda: scheme.query_many(pairs), repeat
            )
            / len(pairs)
            * 1e9,
            "answers": scheme.query_many(pairs),
        }

    packed = _timings(packed=True)
    legacy = _timings(packed=False)
    # the gate must survive python -O, so no bare assert: pop the raw
    # answers unconditionally (they must not leak into the report) and
    # raise explicitly on divergence
    packed_answers = packed.pop("answers")
    legacy_answers = legacy.pop("answers")
    if packed_answers != legacy_answers:
        raise AssertionError("packed drl disagrees with legacy drl")
    return {
        "family": "bioaid-norec",
        "run_size": run.run_size(),
        "query_pairs": len(pairs),
        "packed": packed,
        "legacy": legacy,
        "query_speedup": legacy["query_ns_per_op"]
        / packed["query_ns_per_op"],
        "batch_query_speedup": legacy["batch_query_ns_per_op"]
        / packed["batch_query_ns_per_op"],
        "hot_path_speedup": legacy["query_ns_per_op"]
        / packed["batch_query_ns_per_op"],
    }


def _all_rows() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for entry in _workloads():
        rows.extend(_measure(entry))
    return rows


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def test_scheme_comparison_rows(benchmark):
    rows = benchmark.pedantic(_all_rows, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [
        {k: str(v) for k, v in row.items()} for row in rows
    ]
    measured = [row for row in rows if "skip" not in row]
    # every registered scheme must be measured on at least one workload
    covered = {row["scheme"] for row in measured}
    assert covered == set(scheme_registry.available())
    # exact answers come from every scheme, so throughput is comparable
    for row in measured:
        assert row["queries_per_sec"] > 0
        assert row["query_ns_per_op"] > 0
        assert row["batch_query_ns_per_op"] > 0
        assert row["total_bits"] > 0


def test_packed_legacy_equivalence(benchmark):
    """The comparison section asserts equal answers internally."""
    comparison = benchmark.pedantic(
        lambda: _packed_vs_legacy(repeat=1), rounds=1, iterations=1
    )
    benchmark.extra_info["comparison"] = {
        k: str(v) for k, v in comparison.items()
    }
    assert comparison["packed"]["batch_query_ns_per_op"] > 0


def test_drl_beats_naive_storage(benchmark):
    spec = bioaid(recursive=False)
    run = sample_run(spec, 2000, random.Random(3))
    workload = Workload.from_run(spec, run)

    def build_both():
        return {
            b.name: b.scheme
            for b in build_registry_schemes(workload, names=["drl", "naive"])
        }

    built = benchmark.pedantic(build_both, rounds=1, iterations=1)
    assert built["drl"].total_bits() < built["naive"].total_bits() / 4


# ---------------------------------------------------------------------------
# standalone report
# ---------------------------------------------------------------------------


def main() -> int:
    rows = _all_rows()
    print(
        f"{'family':<14} {'n':>6} {'scheme':<15} {'build_ms':>9} "
        f"{'q ns':>7} {'batch ns':>9} {'total_bits':>11} {'max_bits':>9}"
    )
    for row in rows:
        if "skip" in row:
            print(
                f"{row['family']:<14} {row['run_size']:>6} "
                f"{row['scheme']:<15} skipped: {row['skip']}"
            )
            continue
        print(
            f"{row['family']:<14} {row['run_size']:>6} {row['scheme']:<15} "
            f"{row['build_ms']:>9.1f} {row['query_ns_per_op']:>7.0f} "
            f"{row['batch_query_ns_per_op']:>9.0f} "
            f"{row['total_bits']:>11} {row['max_bits']:>9}"
        )
    try:
        comparison = _packed_vs_legacy()
    except AssertionError as exc:
        print(f"EQUIVALENCE FAILURE: {exc}")
        return 1
    print(
        f"\ndrl packed vs legacy (n={comparison['run_size']}): "
        f"query {comparison['query_speedup']:.2f}x, "
        f"batch {comparison['batch_query_speedup']:.2f}x, "
        f"hot path {comparison['hot_path_speedup']:.2f}x"
    )
    document = {
        "benchmark": "schemes",
        "query_pairs": QUERY_PAIRS,
        "schemes": scheme_registry.describe(),
        "rows": rows,
        "drl_packed_vs_legacy": comparison,
    }
    with open(OUTPUT, "w") as handle:
        json.dump(document, handle, indent=2)
    print(f"\nwrote {OUTPUT}")
    measured = {row["scheme"] for row in rows if "skip" not in row}
    missing = set(scheme_registry.available()) - measured
    if missing:
        print(f"ERROR: schemes never measured on any workload: {missing}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
