"""Query microbenchmark: ns/op per dynamic scheme, packed vs legacy.

The innermost loop of the whole system is Algorithm 4 deciding one
``(label, label)`` pair.  This benchmark pins a number on it for every
*dynamic* scheme (the ones the service hosts) on one shared workload:

* ``reaches_ns``      -- single-pair protocol calls (``Scheme.reaches``);
* ``query_many_ns``   -- the batch kernel (``Scheme.query_many``);
* ``build_labels_per_sec`` -- label construction throughput (the
  insertion replay, what ingest pays per vertex).

For ``drl`` both representations are measured -- ``drl`` (packed ints,
the default) and ``drl-legacy`` (the reference entry tuples, built
with ``packed=False``) -- so the packed fast path's win is a column,
not a claim.

The benchmark **gates on equivalence, not timing**: it exits nonzero
if any scheme's batch kernel disagrees with its single-pair answers,
or if packed drl disagrees with legacy drl anywhere, so the CI
perf-smoke job fails on a wrong fast path but never on a slow runner.
Timing numbers are uploaded as ``BENCH_queries.json`` for trending.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_queries.py --benchmark-only

or standalone, which also writes ``BENCH_queries.json``::

    PYTHONPATH=src python benchmarks/bench_queries.py
"""

from __future__ import annotations

import contextlib
import gc
import json
import random
import time
from typing import Dict, List, Optional

from repro.datasets import bioaid, fig12_path_grammar
from repro.schemes import Workload
from repro.schemes import registry as scheme_registry
from repro.workflow.derivation import sample_run

RUN_SIZE = 1500
PATH_RUN_SIZE = 300
QUERY_PAIRS = 20_000
REPEAT = 3
OUTPUT = "BENCH_queries.json"

# (row name, registry name, build options, workload tag)
VARIANTS = (
    ("drl", "drl", {}, "bioaid-norec"),
    ("drl-legacy", "drl", {"packed": False}, "bioaid-norec"),
    ("naive", "naive", {}, "bioaid-norec"),
    ("path-position", "path-position", {}, "fig12-path"),
)


def _workloads() -> Dict[str, Workload]:
    spec = bioaid(recursive=False)
    run = sample_run(spec, RUN_SIZE, random.Random(f"queries:{RUN_SIZE}"))
    path_spec = fig12_path_grammar()
    path_run = sample_run(
        path_spec, PATH_RUN_SIZE, random.Random(f"queries:{PATH_RUN_SIZE}")
    )
    return {
        "bioaid-norec": Workload.from_run(spec, run),
        "fig12-path": Workload.from_run(path_spec, path_run),
    }


def _pairs(workload: Workload, count: int = QUERY_PAIRS, seed: int = 17):
    vertices = sorted(workload.graph.vertices())
    rng = random.Random(seed)
    return [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(count)
    ]


@contextlib.contextmanager
def _gc_paused():
    """Same timing discipline as bench_schemes: no collection mid-loop."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _best(fn, repeat: int = REPEAT) -> float:
    best = float("inf")
    with _gc_paused():
        for _ in range(repeat):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
    return best


def measure() -> Dict[str, object]:
    """All rows plus the packed-vs-legacy comparison; raises on mismatch."""
    workloads = _workloads()
    pairs_by_tag = {tag: _pairs(wl) for tag, wl in workloads.items()}
    rows: List[Dict[str, object]] = []
    answers: Dict[str, List[bool]] = {}
    for row_name, scheme_name, options, tag in VARIANTS:
        workload = workloads[tag]
        pairs = pairs_by_tag[tag]
        build_seconds = float("inf")
        scheme = None
        for _ in range(REPEAT):
            build_started = time.perf_counter()
            scheme = scheme_registry.build(scheme_name, workload, **options)
            build_seconds = min(
                build_seconds, time.perf_counter() - build_started
            )
        vertex_count = len(list(scheme.labeled_vertices()))

        reaches = scheme.reaches

        def single() -> None:
            for a, b in pairs:
                reaches(a, b)

        single_seconds = _best(single)
        batch_seconds = _best(lambda: scheme.query_many(pairs))
        batch_answers = scheme.query_many(pairs)
        single_answers = [scheme.reaches(a, b) for a, b in pairs]
        if batch_answers != single_answers:
            raise AssertionError(
                f"{row_name}: query_many disagrees with reaches"
            )
        answers[row_name] = batch_answers
        rows.append(
            {
                "scheme": row_name,
                "workload": tag,
                "run_size": vertex_count,
                "query_pairs": len(pairs),
                "reaches_ns": single_seconds / len(pairs) * 1e9,
                "query_many_ns": batch_seconds / len(pairs) * 1e9,
                "build_seconds": build_seconds,
                "build_labels_per_sec": vertex_count / build_seconds
                if build_seconds
                else None,
            }
        )
    if answers["drl"] != answers["drl-legacy"]:
        raise AssertionError("packed drl disagrees with legacy drl")
    by_name = {row["scheme"]: row for row in rows}
    packed = by_name["drl"]
    legacy = by_name["drl-legacy"]
    comparison = {
        "packed_reaches_ns": packed["reaches_ns"],
        "legacy_reaches_ns": legacy["reaches_ns"],
        "packed_query_many_ns": packed["query_many_ns"],
        "legacy_query_many_ns": legacy["query_many_ns"],
        "reaches_speedup": legacy["reaches_ns"] / packed["reaches_ns"],
        "query_many_speedup": legacy["query_many_ns"]
        / packed["query_many_ns"],
        # the headline: the new hot path (packed batch kernel) against
        # the old one (legacy per-pair query)
        "hot_path_speedup": legacy["reaches_ns"] / packed["query_many_ns"],
    }
    return {
        "benchmark": "queries",
        "query_pairs": QUERY_PAIRS,
        "rows": rows,
        "drl_packed_vs_legacy": comparison,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry point
# ---------------------------------------------------------------------------


def test_query_kernels_equivalent(benchmark):
    document = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [
        {k: str(v) for k, v in row.items()} for row in document["rows"]
    ]
    comparison = document["drl_packed_vs_legacy"]
    # equivalence is asserted inside measure(); here we only sanity-
    # check the report shape -- never gate CI on a timing ratio
    assert {row["scheme"] for row in document["rows"]} == {
        name for name, _, _, _ in VARIANTS
    }
    assert comparison["packed_query_many_ns"] > 0


# ---------------------------------------------------------------------------
# standalone report
# ---------------------------------------------------------------------------


def main() -> int:
    try:
        document = measure()
    except AssertionError as exc:
        print(f"EQUIVALENCE FAILURE: {exc}")
        return 1
    print(
        f"{'scheme':<14} {'workload':<14} {'reaches ns':>11} "
        f"{'batch ns':>9} {'labels/s':>11}"
    )
    for row in document["rows"]:
        print(
            f"{row['scheme']:<14} {row['workload']:<14} "
            f"{row['reaches_ns']:>11.0f} {row['query_many_ns']:>9.0f} "
            f"{row['build_labels_per_sec']:>11,.0f}"
        )
    comparison = document["drl_packed_vs_legacy"]
    print(
        f"\ndrl packed vs legacy: reaches {comparison['reaches_speedup']:.2f}x, "
        f"batch {comparison['query_many_speedup']:.2f}x, "
        f"hot path {comparison['hot_path_speedup']:.2f}x"
    )
    with open(OUTPUT, "w") as handle:
        json.dump(document, handle, indent=2)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
