"""Micro-benchmarks of the core operations (per-op costs).

These measure the primitives the paper's Theorem 3 bounds: per-vertex
label construction, per-query predicate evaluation, skeleton
construction, derivation, and serialization.
"""

from __future__ import annotations

import random

from repro.datasets import bioaid, running_example
from repro.labeling.drl import DRL
from repro.labeling.naive_dynamic import NaiveDynamicScheme
from repro.labeling.serialize import LabelCodec
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation
from repro.workflow.grammar import analyze_grammar


def test_grammar_analysis(benchmark):
    spec = bioaid()
    benchmark(lambda: analyze_grammar(spec))


def test_derivation_sampling_1k(benchmark):
    spec = bioaid()

    def sample():
        return sample_run(spec, 1000, random.Random(1))

    benchmark(sample)


def test_drl_query_single(benchmark):
    spec = bioaid()
    scheme = DRL(spec, skeleton="tcl")
    run = sample_run(spec, 2000, random.Random(2))
    labels = scheme.label_derivation(run)
    vids = sorted(run.graph.vertices())
    a, b = labels[vids[3]], labels[vids[-3]]
    benchmark(lambda: scheme.query(a, b))


def test_naive_query_single(benchmark):
    scheme = NaiveDynamicScheme()
    for i in range(2000):
        scheme.insert(i, preds=[i - 1] if i else [])
    a, b = scheme.label(3), scheme.label(1997)
    benchmark(lambda: scheme.query(a, b))


def test_label_encode_decode(benchmark):
    spec = running_example()
    scheme = DRL(spec, skeleton="tcl")
    run = sample_run(spec, 500, random.Random(3))
    labels = scheme.label_derivation(run)
    codec = LabelCodec(spec)
    sample = [labels[v] for v in list(run.graph.vertices())[:50]]

    def round_trip():
        for label in sample:
            payload, bits = codec.encode(label)
            codec.decode(payload, bits)

    benchmark(round_trip)


def test_execution_generation_1k(benchmark):
    spec = bioaid()
    run = sample_run(spec, 1000, random.Random(4))
    benchmark(lambda: execution_from_derivation(run, random.Random(5)))
