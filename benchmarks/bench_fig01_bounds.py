"""Figure 1 and Theorem 1: the maximum-label-length bounds, measured."""

from __future__ import annotations

import math

from repro.bench.figures import fig01_bounds, thm1_lower_bound

from benchmarks.conftest import attach_rows


def test_fig01_bounds_table(benchmark, bench_config):
    table = benchmark.pedantic(
        fig01_bounds, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = {r["graph_class"]: r for r in table.as_dicts()}
    n = rows["DAG (dynamic)"]["n"]
    # Theta(n) rows
    assert rows["tree (dynamic, unbounded depth)"]["max_label_bits"] >= n // 2
    assert rows["DAG (dynamic)"]["max_label_bits"] == n - 1
    # Theta(log n) rows stay within a constant factor of log2(n)
    log_n = math.log2(n)
    for key in (
        "tree (dynamic, bounded depth)",
        "run, non-recursive (dynamic)",
        "run, linear recursive (dynamic)",
    ):
        assert rows[key]["max_label_bits"] <= 8 * log_n
    # the recursive (nonlinear) row sits far above the logarithmic rows
    assert (
        rows["run, recursive (dynamic)"]["max_label_bits"]
        > rows["run, linear recursive (dynamic)"]["max_label_bits"]
    )


def test_thm1_lower_bound_growth(benchmark, bench_config):
    table = benchmark.pedantic(
        thm1_lower_bound, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    # linear-size labels: bits grow proportionally to the run size
    first, last = rows[0], rows[-1]
    size_ratio = last["run_size"] / first["run_size"]
    bits_ratio = last["drl_one_r_bits"] / max(first["drl_one_r_bits"], 1)
    assert bits_ratio >= size_ratio / 4  # clearly super-logarithmic
    assert last["drl_one_r_bits"] > 6 * last["log2(n)_ref"]
