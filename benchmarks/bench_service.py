"""Service benchmarks: ingest throughput and batch-query QPS.

Measures the provenance query service end to end (in process, so the
numbers isolate engine cost from socket cost): events/sec through the
session ingest path, batch-query QPS with a cold versus warm cache, and
query throughput spread across many concurrent sessions.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py --benchmark-only

or standalone for a quick plain-text report::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import random
import time

from repro.datasets import running_example
from repro.service import QueryEngine, SessionManager
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation

RUN_SIZE = 2000
BATCH = 2000


def _prepared_run(seed=0, size=RUN_SIZE):
    spec = running_example()
    run = sample_run(spec, size, random.Random(seed))
    return spec, run, execution_from_derivation(run)


def _pairs(run, count, seed=1):
    vids = sorted(run.graph.vertices())
    rng = random.Random(seed)
    return [(rng.choice(vids), rng.choice(vids)) for _ in range(count)]


def _loaded_engine(cache_size=65536):
    spec, run, execution = _prepared_run()
    manager = SessionManager()
    engine = QueryEngine(manager, cache_size=cache_size)
    manager.create("bench", spec)
    engine.ingest("bench", execution.insertions)
    return engine, run, execution


def test_service_ingest_throughput(benchmark):
    spec, run, execution = _prepared_run()
    manager = SessionManager()
    engine = QueryEngine(manager)
    counter = iter(range(10 ** 9))

    def ingest():
        name = f"run-{next(counter)}"
        manager.create(name, spec)
        engine.ingest(name, execution.insertions)
        manager.close(name)

    benchmark(ingest)
    events = len(execution)
    benchmark.extra_info["events_per_round"] = events
    benchmark.extra_info["events_per_sec"] = events / benchmark.stats["mean"]


def test_service_batch_query_cold(benchmark):
    engine, run, _ = _loaded_engine(cache_size=0)  # no cache: always cold
    pairs = _pairs(run, BATCH)
    benchmark(lambda: engine.query_many("bench", pairs))
    benchmark.extra_info["qps"] = BATCH / benchmark.stats["mean"]


def test_service_batch_query_warm(benchmark):
    engine, run, _ = _loaded_engine()
    pairs = _pairs(run, BATCH)
    engine.query_many("bench", pairs)  # populate the cache
    benchmark(lambda: engine.query_many("bench", pairs))
    benchmark.extra_info["qps"] = BATCH / benchmark.stats["mean"]
    benchmark.extra_info["hit_rate"] = engine.stats().hit_rate


def test_service_multi_session_queries(benchmark):
    spec, run, execution = _prepared_run(size=500)
    manager = SessionManager()
    engine = QueryEngine(manager)
    names = [f"s{i}" for i in range(8)]
    for name in names:
        manager.create(name, spec)
        engine.ingest(name, execution.insertions)
    pairs = _pairs(run, BATCH // len(names))

    def fan_out():
        for name in names:
            engine.query_many(name, pairs)

    benchmark(fan_out)
    total = len(names) * len(pairs)
    benchmark.extra_info["qps"] = total / benchmark.stats["mean"]


# ---------------------------------------------------------------------------
# standalone report
# ---------------------------------------------------------------------------


def _timed(fn, repeat=5):
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def main() -> int:
    spec, run, execution = _prepared_run()
    events = len(execution)

    manager = SessionManager()
    engine = QueryEngine(manager)
    counter = iter(range(10 ** 9))

    def ingest_once():
        name = f"run-{next(counter)}"
        manager.create(name, spec)
        engine.ingest(name, execution.insertions)
        manager.close(name)

    ingest_seconds = _timed(ingest_once)
    print(
        f"ingest:            {events} events in {ingest_seconds * 1e3:.1f} ms "
        f"-> {events / ingest_seconds:,.0f} events/sec"
    )

    pairs = _pairs(run, BATCH)
    cold_engine, _, _ = _loaded_engine(cache_size=0)
    cold = _timed(lambda: cold_engine.query_many("bench", pairs))
    print(
        f"batch query cold:  {BATCH} pairs in {cold * 1e3:.1f} ms "
        f"-> {BATCH / cold:,.0f} QPS"
    )

    warm_engine, _, _ = _loaded_engine()
    warm_engine.query_many("bench", pairs)
    warm = _timed(lambda: warm_engine.query_many("bench", pairs))
    print(
        f"batch query warm:  {BATCH} pairs in {warm * 1e3:.1f} ms "
        f"-> {BATCH / warm:,.0f} QPS ({cold / warm:.1f}x cold)"
    )

    if warm >= cold:
        print("WARNING: warm cache was not faster than cold")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
