"""Service benchmarks: ingest throughput, batch-query QPS, shard scaling.

Measures the provenance query service end to end (in process, so the
numbers isolate engine cost from socket cost): events/sec through the
session ingest path, durable-ingest events/sec across the write-ahead
log's fsync policies (``always``/``batch``/``never``, against a no-WAL
baseline -- what acknowledged durability costs), batch-query QPS with
a cold versus warm cache -- each with and without the engine's
``query_many`` batch-kernel fast path (``use_batch_kernels=False``
reproduces the pre-kernel per-pair loop, so ``BENCH_service.json``
records exactly what the kernel buys on the miss path), query
throughput spread across many
concurrent sessions, and -- the scaling story -- warm-cache QPS under
a closed-loop
:mod:`repro.loadgen` worker pool as the engine's lock striping grows
across 1/2/4/8 shards.  Contention on the classic single lock is what
the striping removes, so the shard sweep is run with every worker
hammering its own session concurrently; on a multi-core runner the
striped engines pull ahead, on one core the GIL flattens the curve
(the report records ``cpu_count`` so the numbers stay interpretable).

The worker sweep is the cross-process counterpart: warm QPS through a
real :class:`~repro.service.cluster.ClusterSupervisor` (TCP, hash
routing, N worker *processes*) across 1/2/4 workers.  Unlike shards,
workers escape the GIL entirely -- on a multi-core runner the sweep is
the paper system's actual parallel speedup.  Every section of
``BENCH_service.json`` records ``cpu_count`` and an explicit
``single_core`` flag so numbers collected on one core are never
misread as parallel speedups.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py --benchmark-only

or standalone for a plain-text report plus ``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time

from repro.datasets import running_example
from repro.loadgen import Scenario, engine_driver_factory, run_scenario
from repro.obs import NULL
from repro.service import DurableStore, QueryEngine, SessionManager
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation

RUN_SIZE = 2000
BATCH = 2000
SHARD_COUNTS = (1, 2, 4, 8)
WORKER_COUNTS = (1, 2, 4)  # cluster worker processes, 0 = in-process
SCALING_WORKERS = 8
SCALING_DURATION = float(os.environ.get("BENCH_SCALING_SECONDS", "1.0"))
DURABLE_CHUNK = 64  # events per acknowledged ingest on the durable path
DURABLE_POLICIES = (None, "always", "batch", "never")  # None = no WAL
OUTPUT = "BENCH_service.json"

# pure warm-cache read load: everything ingested at prefill (no version
# bumps afterwards), every query drawn from a small hot set so the
# working set is fully cached after the first few batches
WARM_SCENARIO = Scenario(
    name="warm-shard-scaling",
    summary="pure warm-cache reads, one hot session per worker",
    spec="running-example",
    sessions=SCALING_WORKERS,
    run_size=400,
    prefill=400,
    query_fraction=1.0,
    batch_pairs=256,
    hot_fraction=1.0,
    hot_keys=0.05,
)


def _prepared_run(seed=0, size=RUN_SIZE):
    spec = running_example()
    run = sample_run(spec, size, random.Random(seed))
    return spec, run, execution_from_derivation(run)


def _pairs(run, count, seed=1):
    vids = sorted(run.graph.vertices())
    rng = random.Random(seed)
    return [(rng.choice(vids), rng.choice(vids)) for _ in range(count)]


def _loaded_engine(cache_size=65536, shards=1, use_batch_kernels=True,
                   metrics=None):
    spec, run, execution = _prepared_run()
    manager = SessionManager()
    engine = QueryEngine(
        manager,
        cache_size=cache_size,
        shards=shards,
        use_batch_kernels=use_batch_kernels,
        metrics=metrics,
    )
    manager.create("bench", spec)
    engine.ingest("bench", execution.insertions)
    return engine, run, execution


def observability_overhead(repeat=9):
    """Warm-cache QPS with default instrumentation vs ``metrics=NULL``.

    The two engines are timed interleaved (one round each, best-of-N),
    so clock drift and thermal throttling hit both alike; the ratio is
    what the per-batch histogram records cost on the hottest read path.
    """
    instrumented, run, _ = _loaded_engine()
    bare, _, _ = _loaded_engine(metrics=NULL)
    pairs = _pairs(run, BATCH)
    instrumented.query_many("bench", pairs)  # populate both caches
    bare.query_many("bench", pairs)
    best_on = best_off = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        instrumented.query_many("bench", pairs)
        best_on = min(best_on, time.perf_counter() - started)
        started = time.perf_counter()
        bare.query_many("bench", pairs)
        best_off = min(best_off, time.perf_counter() - started)
    warm_qps = BATCH / best_on
    warm_qps_no_obs = BATCH / best_off
    return {
        "warm_qps": warm_qps,
        "warm_qps_no_obs": warm_qps_no_obs,
        "ratio": warm_qps / warm_qps_no_obs,
    }


def _warm_scaling_row(shards, duration=SCALING_DURATION, seed=0):
    """Warm-cache QPS of one shard count under the closed-loop pool."""
    manager = SessionManager()
    engine = QueryEngine(manager, cache_size=1 << 17, shards=shards)
    report = run_scenario(
        WARM_SCENARIO,
        engine_driver_factory(engine),
        duration=duration,
        workers=SCALING_WORKERS,
        seed=seed,
    )
    stats = report.stats
    return {
        "shards": shards,
        "workers": report.workers,
        "qps": report.qps,
        "queries": report.queries,
        "hit_rate": stats.get("hit_rate"),
        "errors": list(report.errors),
    }


def shard_scaling(duration=SCALING_DURATION):
    """One warm-QPS row per shard count in :data:`SHARD_COUNTS`."""
    return [_warm_scaling_row(shards, duration) for shards in SHARD_COUNTS]


def _worker_scaling_row(workers, duration=SCALING_DURATION, seed=0):
    """Warm-cache QPS through a real ``workers``-process cluster.

    The closed-loop pool drives the cluster over TCP (the router's
    hash partitioning spreads the scenario's sessions across worker
    processes), so the row measures the whole serving tier: protocol,
    router byte shuffling, and N GILs doing the engine work.
    """
    import threading

    from repro.loadgen import client_driver_factory
    from repro.service.cluster import ClusterSupervisor

    supervisor = ClusterSupervisor(
        workers=workers, port=0, shards=4, cache_size=1 << 17
    ).start()
    thread = threading.Thread(target=supervisor.serve_forever,
                              daemon=True)
    thread.start()
    try:
        report = run_scenario(
            WARM_SCENARIO,
            client_driver_factory("127.0.0.1", supervisor.port),
            duration=duration,
            workers=SCALING_WORKERS,
            seed=seed,
        )
    finally:
        supervisor.stop()
        thread.join(timeout=30)
    stats = report.stats
    return {
        "workers": workers,
        "qps": report.qps,
        "qps_per_worker": report.qps / workers,
        "queries": report.queries,
        "hit_rate": stats.get("hit_rate"),
        "errors": list(report.errors),
    }


def worker_scaling(duration=SCALING_DURATION):
    """One warm-QPS row per cluster size in :data:`WORKER_COUNTS`."""
    return [
        _worker_scaling_row(workers, duration)
        for workers in WORKER_COUNTS
    ]


def _durable_ingest_seconds(policy, spec, execution, chunk=DURABLE_CHUNK):
    """Seconds to ingest the whole run in acknowledged durable chunks."""
    events = execution.insertions
    manager = SessionManager()
    engine = QueryEngine(manager)
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as tmp:
        session = manager.create("bench", spec)
        store = None
        if policy is not None:
            store = DurableStore(tmp, fsync=policy)
            store.register(session)
        started = time.perf_counter()
        for start in range(0, len(events), chunk):
            engine.ingest("bench", events[start : start + chunk])
        elapsed = time.perf_counter() - started
        if store is not None:
            store.close()
        manager.close("bench")
    return elapsed


def durable_ingest_rows(repeat=3, chunk=DURABLE_CHUNK):
    """Ingest events/sec per WAL fsync policy (plus a no-WAL baseline).

    Every ingest is one acknowledged request of ``chunk`` events, so
    the ``always`` row pays one fsync per acknowledgement -- the price
    of power-loss durability -- while ``batch``/``never`` show what the
    relaxed policies buy back.
    """
    spec, _, execution = _prepared_run()
    events = len(execution)
    rows = []
    for policy in DURABLE_POLICIES:
        best = min(
            _durable_ingest_seconds(policy, spec, execution, chunk)
            for _ in range(repeat)
        )
        rows.append(
            {
                "fsync": policy or "none",
                "events": events,
                "chunk": chunk,
                "seconds": best,
                "events_per_sec": events / best,
            }
        )
    return rows


def test_service_ingest_throughput(benchmark):
    spec, run, execution = _prepared_run()
    manager = SessionManager()
    engine = QueryEngine(manager)
    counter = iter(range(10 ** 9))

    def ingest():
        name = f"run-{next(counter)}"
        manager.create(name, spec)
        engine.ingest(name, execution.insertions)
        manager.close(name)

    benchmark(ingest)
    events = len(execution)
    benchmark.extra_info["events_per_round"] = events
    benchmark.extra_info["events_per_sec"] = events / benchmark.stats["mean"]


def test_service_batch_query_cold(benchmark):
    engine, run, _ = _loaded_engine(cache_size=0)  # no cache: always cold
    pairs = _pairs(run, BATCH)
    benchmark(lambda: engine.query_many("bench", pairs))
    benchmark.extra_info["qps"] = BATCH / benchmark.stats["mean"]


def test_service_batch_query_cold_no_kernel(benchmark):
    """The per-pair fallback path: what the batch kernel is saving."""
    engine, run, _ = _loaded_engine(cache_size=0, use_batch_kernels=False)
    pairs = _pairs(run, BATCH)
    benchmark(lambda: engine.query_many("bench", pairs))
    benchmark.extra_info["qps"] = BATCH / benchmark.stats["mean"]
    benchmark.extra_info["use_batch_kernels"] = False


def test_service_batch_query_warm(benchmark):
    engine, run, _ = _loaded_engine()
    pairs = _pairs(run, BATCH)
    engine.query_many("bench", pairs)  # populate the cache
    benchmark(lambda: engine.query_many("bench", pairs))
    benchmark.extra_info["qps"] = BATCH / benchmark.stats["mean"]
    benchmark.extra_info["hit_rate"] = engine.stats().hit_rate


def test_service_batch_query_warm_striped(benchmark):
    """The striped engine must not tax the single-caller warm path."""
    engine, run, _ = _loaded_engine(shards=4)
    pairs = _pairs(run, BATCH)
    engine.query_many("bench", pairs)
    benchmark(lambda: engine.query_many("bench", pairs))
    benchmark.extra_info["qps"] = BATCH / benchmark.stats["mean"]
    benchmark.extra_info["shards"] = 4


def test_service_multi_session_queries(benchmark):
    spec, run, execution = _prepared_run(size=500)
    manager = SessionManager()
    engine = QueryEngine(manager, shards=4)
    names = [f"s{i}" for i in range(8)]
    for name in names:
        manager.create(name, spec)
        engine.ingest(name, execution.insertions)
    pairs = _pairs(run, BATCH // len(names))

    def fan_out():
        for name in names:
            engine.query_many(name, pairs)

    benchmark(fan_out)
    total = len(names) * len(pairs)
    benchmark.extra_info["qps"] = total / benchmark.stats["mean"]


def test_durable_ingest_rows(benchmark):
    rows = benchmark.pedantic(
        lambda: durable_ingest_rows(repeat=1), rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = [
        {k: str(v) for k, v in row.items()} for row in rows
    ]
    assert [row["fsync"] for row in rows] == [
        "none", "always", "batch", "never",
    ]
    for row in rows:
        assert row["events_per_sec"] > 0


def test_shard_scaling_rows(benchmark):
    rows = benchmark.pedantic(
        lambda: shard_scaling(duration=0.3), rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = [
        {k: str(v) for k, v in row.items()} for row in rows
    ]
    assert [row["shards"] for row in rows] == list(SHARD_COUNTS)
    for row in rows:
        assert not row["errors"]
        assert row["qps"] > 0
        assert row["hit_rate"] > 0.5  # the scaling load is warm


def test_worker_scaling_rows(benchmark):
    rows = benchmark.pedantic(
        lambda: [_worker_scaling_row(w, duration=0.3) for w in (1, 2)],
        rounds=1, iterations=1,
    )
    benchmark.extra_info["rows"] = [
        {k: str(v) for k, v in row.items()} for row in rows
    ]
    assert [row["workers"] for row in rows] == [1, 2]
    for row in rows:
        assert not row["errors"]
        assert row["qps"] > 0
        assert row["qps_per_worker"] == row["qps"] / row["workers"]


# ---------------------------------------------------------------------------
# standalone report
# ---------------------------------------------------------------------------


def _timed(fn, repeat=5):
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def main() -> int:
    spec, run, execution = _prepared_run()
    events = len(execution)

    manager = SessionManager()
    engine = QueryEngine(manager)
    counter = iter(range(10 ** 9))

    def ingest_once():
        name = f"run-{next(counter)}"
        manager.create(name, spec)
        engine.ingest(name, execution.insertions)
        manager.close(name)

    ingest_seconds = _timed(ingest_once)
    print(
        f"ingest:            {events} events in {ingest_seconds * 1e3:.1f} ms "
        f"-> {events / ingest_seconds:,.0f} events/sec"
    )

    pairs = _pairs(run, BATCH)
    cold_engine, _, _ = _loaded_engine(cache_size=0)
    cold = _timed(lambda: cold_engine.query_many("bench", pairs))
    print(
        f"batch query cold:  {BATCH} pairs in {cold * 1e3:.1f} ms "
        f"-> {BATCH / cold:,.0f} QPS"
    )

    # the same uncached batch without the scheme's query_many kernel:
    # every miss goes through the per-pair reaches_labels loop, which
    # is what the engine did before batch kernels existed
    plain_engine, _, _ = _loaded_engine(cache_size=0, use_batch_kernels=False)
    cold_plain = _timed(lambda: plain_engine.query_many("bench", pairs))
    print(
        f"  without kernel:  {BATCH} pairs in {cold_plain * 1e3:.1f} ms "
        f"-> {BATCH / cold_plain:,.0f} QPS "
        f"(kernel is {cold_plain / cold:.2f}x)"
    )

    warm_engine, _, _ = _loaded_engine()
    warm_engine.query_many("bench", pairs)
    warm = _timed(lambda: warm_engine.query_many("bench", pairs))
    print(
        f"batch query warm:  {BATCH} pairs in {warm * 1e3:.1f} ms "
        f"-> {BATCH / warm:,.0f} QPS ({cold / warm:.1f}x cold)"
    )

    warm_plain_engine, _, _ = _loaded_engine(use_batch_kernels=False)
    warm_plain_engine.query_many("bench", pairs)
    warm_plain = _timed(lambda: warm_plain_engine.query_many("bench", pairs))
    print(
        f"  without kernel:  {BATCH} pairs in {warm_plain * 1e3:.1f} ms "
        f"-> {BATCH / warm_plain:,.0f} QPS (all hits either way)"
    )

    durable_rows = durable_ingest_rows()
    baseline_eps = durable_rows[0]["events_per_sec"]
    print(
        f"durable ingest:    {events} events in chunks of {DURABLE_CHUNK} "
        "(one WAL append + ack per chunk)"
    )
    for row in durable_rows:
        ratio = row["events_per_sec"] / baseline_eps if baseline_eps else 0.0
        print(
            f"  fsync={row['fsync']:<7} {row['events_per_sec']:>12,.0f} "
            f"events/sec ({ratio:.2f}x no-WAL)"
        )

    print(
        f"shard scaling:     {SCALING_WORKERS} workers, warm cache, "
        f"{SCALING_DURATION:.1f}s per shard count"
    )
    scaling_rows = shard_scaling()
    baseline = scaling_rows[0]["qps"]
    for row in scaling_rows:
        ratio = row["qps"] / baseline if baseline else 0.0
        print(
            f"  {row['shards']} shard(s):   {row['qps']:>12,.0f} QPS "
            f"({ratio:.2f}x 1-shard, hit rate {row['hit_rate']:.2f})"
        )
        for error in row["errors"]:
            print(f"  ERROR: {error}")

    print(
        f"worker scaling:    cluster warm QPS over TCP, "
        f"{SCALING_DURATION:.1f}s per worker count"
    )
    worker_rows = worker_scaling()
    worker_baseline = worker_rows[0]["qps"]
    for row in worker_rows:
        ratio = row["qps"] / worker_baseline if worker_baseline else 0.0
        print(
            f"  {row['workers']} worker(s):  {row['qps']:>12,.0f} QPS "
            f"({ratio:.2f}x 1-worker, "
            f"{row['qps_per_worker']:,.0f} QPS/worker)"
        )
        for error in row["errors"]:
            print(f"  ERROR: {error}")

    obs = observability_overhead()
    print(
        f"observability:     warm {obs['warm_qps']:,.0f} QPS instrumented "
        f"vs {obs['warm_qps_no_obs']:,.0f} bare "
        f"({obs['ratio']:.3f}x; floor 0.95)"
    )

    by_shards = {row["shards"]: row["qps"] for row in scaling_rows}
    scaling_4x = (
        by_shards.get(4, 0.0) / by_shards[1] if by_shards.get(1) else 0.0
    )
    by_workers = {row["workers"]: row["qps"] for row in worker_rows}
    worker_4x = (
        by_workers.get(4, 0.0) / by_workers[1]
        if by_workers.get(1) else 0.0
    )

    # every section carries its own provenance so a single row quoted
    # out of context still says whether real parallelism was possible
    cpu_count = os.cpu_count() or 1
    provenance = {
        "cpu_count": cpu_count,
        "single_core": cpu_count == 1,
    }
    document = {
        "benchmark": "service",
        "cpu_count": cpu_count,
        "single_core": cpu_count == 1,
        "run_size": RUN_SIZE,
        "batch": BATCH,
        "ingest": {
            **provenance,
            "events": events,
            "seconds": ingest_seconds,
            "events_per_sec": events / ingest_seconds,
        },
        "batch_query": {
            **provenance,
            "cold_qps": BATCH / cold,
            "cold_qps_no_kernel": BATCH / cold_plain,
            "kernel_cold_speedup": cold_plain / cold,
            "warm_qps": BATCH / warm,
            "warm_qps_no_kernel": BATCH / warm_plain,
            "warm_speedup": cold / warm,
        },
        "durable_ingest": {
            **provenance,
            "chunk": DURABLE_CHUNK,
            "rows": durable_rows,
        },
        "shard_scaling": {
            **provenance,
            "workers": SCALING_WORKERS,
            "batch_pairs": WARM_SCENARIO.batch_pairs,
            "duration": SCALING_DURATION,
            "scenario": WARM_SCENARIO.to_dict(),
            "rows": scaling_rows,
            "qps_4_shards_over_1": scaling_4x,
        },
        "worker_scaling": {
            **provenance,
            "worker_counts": list(WORKER_COUNTS),
            "driver_threads": SCALING_WORKERS,
            "batch_pairs": WARM_SCENARIO.batch_pairs,
            "duration": SCALING_DURATION,
            "scenario": WARM_SCENARIO.to_dict(),
            "rows": worker_rows,
            "qps_4_workers_over_1": worker_4x,
        },
        "observability": {
            **provenance,
            **obs,
        },
    }
    with open(OUTPUT, "w") as handle:
        json.dump(document, handle, indent=2)
    print(f"wrote {OUTPUT}")

    if warm >= cold:
        print("WARNING: warm cache was not faster than cold")
        return 1
    if any(row["errors"] for row in scaling_rows):
        print("ERROR: shard scaling rows reported failures")
        return 1
    if any(row["errors"] for row in worker_rows):
        print("ERROR: worker scaling rows reported failures")
        return 1
    return 0


def check_obs_overhead(floor=0.95, attempts=3) -> int:
    """CI gate: instrumented warm QPS must stay within ``floor`` of bare.

    Retried a few times before failing -- a shared CI runner's noise on
    a sub-10ms measurement would otherwise flake the gate; a *real*
    instrumentation regression fails every attempt.
    """
    worst = None
    for attempt in range(1, attempts + 1):
        obs = observability_overhead()
        print(
            f"obs-overhead attempt {attempt}: "
            f"{obs['warm_qps']:,.0f} instrumented vs "
            f"{obs['warm_qps_no_obs']:,.0f} bare QPS "
            f"({obs['ratio']:.3f}x, floor {floor})"
        )
        if obs["ratio"] >= floor:
            print("obs-overhead OK")
            return 0
        worst = obs
    print(
        f"obs-overhead FAILED: instrumentation holds warm QPS at "
        f"{worst['ratio']:.3f}x of the uninstrumented engine "
        f"(floor {floor})"
    )
    return 1


def check_worker_scaling(floor=1.05, attempts=3) -> int:
    """CI gate: 4 cluster workers must beat 1 by ``floor`` on >= 2 cores.

    The whole point of the process-per-shard tier is multi-core
    speedup, so on a multi-core runner warm QPS through a 4-worker
    cluster must be at least ``floor`` times the 1-worker baseline.
    On a single core the comparison is meaningless -- four processes
    time-slice one core and the router adds a hop -- so the gate
    *skips, loudly*, rather than asserting a speedup the hardware
    cannot produce (the BENCH_service.json ``single_core`` flag records
    the same caveat for readers of the numbers).
    """
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        print(
            f"worker-scaling SKIPPED: runner has {cpu_count} CPU core; "
            f"a {max(WORKER_COUNTS)}-process cluster cannot run in "
            "parallel here, so asserting a speedup would only measure "
            "scheduler noise (gate requires >= 2 cores)"
        )
        return 0
    worst = None
    for attempt in range(1, attempts + 1):
        one = _worker_scaling_row(1)
        four = _worker_scaling_row(4)
        ratio = four["qps"] / one["qps"] if one["qps"] else 0.0
        print(
            f"worker-scaling attempt {attempt}: "
            f"{one['qps']:,.0f} QPS @ 1 worker vs "
            f"{four['qps']:,.0f} QPS @ 4 workers "
            f"({ratio:.3f}x, floor {floor}, {cpu_count} cores)"
        )
        if one["errors"] or four["errors"]:
            print(f"worker-scaling errors: {one['errors']} "
                  f"{four['errors']}")
            return 1
        if ratio >= floor:
            print("worker-scaling OK")
            return 0
        worst = ratio
    print(
        f"worker-scaling FAILED: 4 workers hold warm QPS at "
        f"{worst:.3f}x of 1 worker (floor {floor} on "
        f"{cpu_count} cores)"
    )
    return 1


if __name__ == "__main__":
    import sys

    if "--check-obs-overhead" in sys.argv[1:]:
        raise SystemExit(check_obs_overhead())
    if "--check-worker-scaling" in sys.argv[1:]:
        raise SystemExit(check_worker_scaling())
    raise SystemExit(main())
