"""Figure 22: query time for all four scheme/skeleton combinations."""

from __future__ import annotations

from repro.bench.figures import fig22_query_vs_skl

from benchmarks.conftest import attach_rows


def test_fig22_series(benchmark, bench_config):
    table = benchmark.pedantic(
        fig22_query_vs_skl, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()

    def mean(column):
        return sum(r[column] for r in rows) / len(rows)

    # SKL(TCL) decodes a simpler label: never much slower than DRL(TCL)
    assert mean("skl_tcl_us") <= mean("drl_tcl_us") * 2
    # BFS skeletons cost more than TCL skeletons on average
    assert mean("skl_bfs_us") >= mean("skl_tcl_us")


def test_skeleton_hit_cost_gap(benchmark):
    """The Section 7.4 order-of-magnitude claim, measured directly.

    A query that falls through to the skeleton comparison makes SKL(BFS)
    search the *global* specification while DRL(BFS) searches one small
    sub-workflow graph; the cost ratio is the size ratio.
    """
    import random

    from repro.datasets import bioaid
    from repro.graphs.reachability import reaches
    from repro.labeling.skl import GlobalSpecification
    from repro.workflow.specification import START_KEY

    spec = bioaid(recursive=False)
    gs = GlobalSpecification(spec)
    gs_vertices = sorted(gs.graph.vertices())
    template = spec.graph(START_KEY).dag
    t_vertices = sorted(template.vertices())
    rng = random.Random(22)

    def skeleton_hits():
        for _ in range(200):
            reaches(gs.graph, rng.choice(gs_vertices), rng.choice(gs_vertices))

    import time

    start = time.perf_counter()
    for _ in range(200):
        reaches(template, rng.choice(t_vertices), rng.choice(t_vertices))
    template_cost = time.perf_counter() - start

    gs_elapsed = benchmark.pedantic(
        lambda: skeleton_hits(), rounds=3, iterations=1
    )
    start = time.perf_counter()
    skeleton_hits()
    gs_cost = time.perf_counter() - start
    benchmark.extra_info["template_cost_200_queries_s"] = template_cost
    benchmark.extra_info["global_spec_cost_200_queries_s"] = gs_cost
    assert gs_cost > 3 * template_cost
