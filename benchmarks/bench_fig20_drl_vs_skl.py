"""Figure 20: DRL (dynamic) vs SKL (static) maximum label length."""

from __future__ import annotations

from repro.bench.figures import fig20_drl_vs_skl_length

from benchmarks.conftest import attach_rows


def test_fig20_series(benchmark, bench_config):
    table = benchmark.pedantic(
        fig20_drl_vs_skl_length, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    assert len(rows) >= 2
    # the slope comparison of Section 7.4: SKL pays ~3 bits per doubling,
    # DRL clearly fewer -- so SKL's total growth exceeds DRL's
    drl_growth = rows[-1]["drl_bits"] - rows[0]["drl_bits"]
    skl_growth = rows[-1]["skl_bits"] - rows[0]["skl_bits"]
    assert skl_growth > drl_growth
    doublings = len(rows) - 1
    assert skl_growth >= 2 * doublings  # slope ~3
