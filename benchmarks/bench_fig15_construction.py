"""Figure 15: BioAID on-the-fly construction time (derivation vs execution)."""

from __future__ import annotations

import random

from repro.bench.figures import fig15_construction_time
from repro.datasets import bioaid
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation

from benchmarks.conftest import attach_rows


def test_fig15_series(benchmark, bench_config):
    table = benchmark.pedantic(
        fig15_construction_time, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    # linear total construction: time per vertex roughly flat; allow noise
    per_vertex = [r["us_per_vertex"] for r in rows]
    assert max(per_vertex) <= 40 * min(per_vertex)


def test_derivation_labeling_2k(benchmark):
    spec = bioaid()
    scheme = DRL(spec, skeleton="tcl")
    run = sample_run(spec, 2000, random.Random(15))
    benchmark(lambda: scheme.label_derivation(run))


def test_execution_labeling_2k(benchmark):
    spec = bioaid()
    scheme = DRL(spec, skeleton="tcl")
    run = sample_run(spec, 2000, random.Random(15))
    exe = execution_from_derivation(run)

    def label_execution():
        return DRLExecutionLabeler(scheme, mode="name").run(exe)

    benchmark(label_execution)
