"""Extension: DRL vs general-purpose DAG reachability indexes."""

from __future__ import annotations

import random

from repro.bench.figures import baseline_comparison
from repro.datasets import bioaid
from repro.labeling.chains import ChainIndex
from repro.labeling.grail import GrailIndex
from repro.workflow.derivation import sample_run

from benchmarks.conftest import attach_rows


def test_baseline_table(benchmark, bench_config):
    table = benchmark.pedantic(
        baseline_comparison, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    for row in rows:
        # DRL labels stay far below the naive linear labels ...
        assert row["drl_max_bits"] < row["naive_max_bits"] / 4
        # ... and below the chain index once forks widen the run
        if row["run_size"] >= 2000:
            assert row["drl_max_bits"] < row["chain_max_bits"]


def test_grail_build_2k(benchmark):
    spec = bioaid()
    run = sample_run(spec, 2000, random.Random(41))
    benchmark(lambda: GrailIndex(run.graph, traversals=3, rng=random.Random(1)))


def test_chain_build_2k(benchmark):
    spec = bioaid()
    run = sample_run(spec, 2000, random.Random(41))
    benchmark(lambda: ChainIndex(run.graph))
