"""Figure 19: linear vs nonlinear recursion label lengths."""

from __future__ import annotations

from repro.bench.figures import fig19_nonlinear

from benchmarks.conftest import attach_rows


def test_fig19_series(benchmark, bench_config):
    table = benchmark.pedantic(
        fig19_nonlinear, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    # nonlinear recursion produces longer labels than linear recursion
    for row in rows:
        assert row["nonlinear_bits"] >= row["linear_bits"]
    # yet stays practical: well below the naive n-1 bits
    for row in rows:
        assert row["nonlinear_bits"] < row["run_size"] / 4
