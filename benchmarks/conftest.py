"""Shared configuration for the pytest-benchmark suite.

The benchmarks default to a reduced run-size ladder (max ~4K vertices)
so ``pytest benchmarks/ --benchmark-only`` completes in minutes; set
``REPRO_SCALE=1.0`` to sweep the paper's full 1K..32K ladder.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import BenchConfig


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    scale = float(os.environ.get("REPRO_SCALE", "0.125"))
    samples = int(os.environ.get("REPRO_SAMPLES", "1"))
    queries = int(os.environ.get("REPRO_QUERIES", "5000"))
    return BenchConfig(scale=scale, samples=samples, queries=queries)


def attach_rows(benchmark, table) -> None:
    """Record a driver's table in the benchmark report."""
    benchmark.extra_info["experiment"] = table.id
    benchmark.extra_info["title"] = table.title
    benchmark.extra_info["columns"] = list(table.columns)
    benchmark.extra_info["rows"] = [list(map(str, row)) for row in table.rows]
