"""Ablations beyond the paper: R-node compression, execution modes."""

from __future__ import annotations

from repro.bench.figures import ablation_execution_modes, ablation_r_nodes

from benchmarks.conftest import attach_rows


def test_ablation_r_nodes(benchmark, bench_config):
    table = benchmark.pedantic(
        ablation_r_nodes, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    # R-node compression never loses; it wins when recursion is deep
    for row in rows:
        assert row["with_R_bits"] <= row["without_R_bits"] + 8


def test_ablation_execution_modes(benchmark, bench_config):
    table = benchmark.pedantic(
        ablation_execution_modes, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = table.as_dicts()
    # both modes are linear-time; logged mode skips predecessor matching
    for row in rows:
        assert row["logged_mode_ms"] <= row["name_mode_ms"] * 2.5
