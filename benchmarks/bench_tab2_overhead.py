"""Table 2: preprocessing overhead of labeling the specification."""

from __future__ import annotations

from repro.bench.figures import tab2_spec_overhead
from repro.datasets import bioaid
from repro.labeling.skeleton import make_skeleton
from repro.labeling.skl import SKL

from benchmarks.conftest import attach_rows


def test_tab2(benchmark, bench_config):
    table = benchmark.pedantic(
        tab2_spec_overhead, args=(bench_config,), rounds=1, iterations=1
    )
    attach_rows(benchmark, table)
    rows = {r["scheme"]: r for r in table.as_dicts()}
    # SKL labels the global specification: several times more bits
    assert rows["SKL(TCL)"]["total_space_bits"] > 3 * rows["DRL(TCL)"][
        "total_space_bits"
    ]


def test_drl_spec_labeling(benchmark):
    spec = bioaid(recursive=False)
    benchmark(lambda: make_skeleton(spec, "tcl"))


def test_skl_spec_labeling(benchmark):
    spec = bioaid(recursive=False)
    benchmark(lambda: SKL(spec, skeleton="tcl"))
