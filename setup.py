"""Packaging for the repro library and its ``repro`` command-line tool."""

from setuptools import find_packages, setup

_LONG_DESCRIPTION = """\
# repro

A from-scratch reproduction of Bao, Davidson & Milo, *"Labeling
Recursive Workflow Executions On-the-Fly"* (SIGMOD 2011): workflow
specifications modeled as graph grammars, runs derived or executed
dynamically, and the DRL labeling scheme answering provenance
reachability queries from two logarithmic-size labels in constant
time -- plus the baselines the paper evaluates against.

Includes a concurrent provenance query service (`repro serve`):
many labeled runs hosted as sessions, batched reachability queries
through a version-aware LRU cache, a JSON-lines TCP/stdio protocol,
and checkpoint/recovery of live sessions (see `docs/SERVICE.md`).
"""

setup(
    name="repro-drl",
    version="1.0.0",
    description=(
        "Dynamic reachability labeling for recursive workflow executions "
        "(reproduction of Bao, Davidson & Milo, SIGMOD 2011), with a "
        "concurrent provenance query service"
    ),
    long_description=_LONG_DESCRIPTION,
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    install_requires=[],  # stdlib only, by design
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Information Analysis",
        "Topic :: Database",
    ],
)
