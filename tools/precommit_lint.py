#!/usr/bin/env python3
"""Pre-commit hook: lint the staged Python files with ``repro lint``.

Runs the full rule suite over every staged (added/copied/modified/
renamed) ``.py`` file, honouring the committed findings baseline and
the inline ``# repro: noqa[rule] -- reason`` suppressions.  Staged
files inside the anchored service tree pull the rest of the tree in
as context, so the project-wide and interprocedural rules still
apply; findings are scoped to the staged files.

Install::

    ln -s ../../tools/precommit_lint.py .git/hooks/pre-commit

or call it from an existing hook.  Exit status 0 lets the commit
proceed; 1 blocks it and prints the findings.  ``--all`` lints the
whole tree instead of the staged set (useful from CI or by hand).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import lint  # noqa: E402
from repro.analysis.baseline import (  # noqa: E402
    BASELINE_NAME,
    apply_baseline,
    load_baseline,
)


def staged_python_files() -> list:
    proc = subprocess.run(
        ["git", "diff", "--cached", "--name-only",
         "--diff-filter=ACMR", "--", "*.py"],
        capture_output=True, text=True, cwd=REPO, check=True,
    )
    return [
        REPO / line.strip()
        for line in proc.stdout.splitlines()
        if line.strip() and (REPO / line.strip()).is_file()
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--all", action="store_true",
                        help="lint src/ and tools/ instead of the "
                             "staged files")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan the per-file rules over N processes")
    args = parser.parse_args(argv)

    if args.all:
        paths = [REPO / "src", REPO / "tools"]
    else:
        paths = staged_python_files()
        if not paths:
            return 0

    report = lint(paths, jobs=max(args.jobs, 1))
    try:
        baseline = load_baseline(REPO / BASELINE_NAME)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 1
    report, baselined = apply_baseline(report, baseline)

    for finding in report.findings:
        print(finding.render())
    if report.findings:
        print(f"pre-commit: {len(report.findings)} lint finding(s) in "
              "the staged files -- fix them, or suppress with "
              "'# repro: noqa[rule] -- reason'", file=sys.stderr)
        return 1
    suffix = f", {len(baselined)} baselined" if baselined else ""
    print(f"pre-commit: lint clean across {report.files} staged "
          f"file(s){suffix}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
